/**
 * @file
 * bt_explorer: a command-line front end to the whole framework. Pick a
 * simulated device and an application, tweak the optimizer, cache
 * profiling tables on disk, and optionally compare against the dynamic
 * and data-parallel baselines and report energy.
 *
 *     bt_explorer --device pixel --app octree
 *     bt_explorer --device manycore --app dense --engine annealed
 *     bt_explorer --device jetson --app sparse --no-autotune --energy
 *     bt_explorer --device oneplus --app dense \
 *                 --save-profile /tmp/p.csv
 *     bt_explorer --device oneplus --app dense \
 *                 --load-profile /tmp/p.csv --compare-dynamic
 *     bt_explorer --device pixel --app octree \
 *                 --faults plan.json --json report.json
 *     bt_explorer --check --app all --json check.json
 *     bt_explorer --check-fixtures
 *     bt_explorer --lint --app all --json lint.json
 *     bt_explorer --lint --faults plan.json
 *     bt_explorer --lint-fixtures
 *     bt_explorer --serve --serve-requests 400 --json serve.json
 *
 * Exit codes (uniform across every mode): 0 = clean, 1 = usage error
 * or fixture failure, 2 = findings (check/lint findings, an invalid
 * deployed run, failed serving requests).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/alexnet.hpp"
#include "apps/app_check.hpp"
#include "apps/octree_app.hpp"
#include "check/fixtures.hpp"
#include "common/flags.hpp"
#include "common/logging.hpp"
#include "lint/fixtures.hpp"
#include "lint/lint.hpp"
#include "core/data_parallel.hpp"
#include "core/dynamic_executor.hpp"
#include "core/pipeline.hpp"
#include "platform/devices.hpp"
#include "runtime/fault_plan.hpp"
#include "service/service.hpp"

using namespace bt;

namespace {

struct Options
{
    std::string device = "pixel";
    std::string app = "octree";
    std::string engine = "solver";
    int candidates = 20;
    bool no_autotune = false;
    bool energy = false;
    bool compare_dynamic = false;
    double latency_slack = 0.45;
    double gapness_slack = 1.0;
    bool edp_objective = false;
    std::string save_profile;
    std::string load_profile;
    std::string trace_file;
    std::string faults_file;
    std::string json_file;
    bool check = false;
    bool check_fixtures = false;
    bool lint = false;
    bool lint_fixtures = false;
    bool serve = false;
    int serve_requests = 200;
    int serve_workers = 4;
    int serve_sessions = 4;
};

/**
 * The planner's objective value of @p c under @p spec — what the
 * selected engine ranked by, echoed as "plan_cost" in every JSON
 * report so engines can be compared like for like.
 */
double
planCost(const core::Candidate& c, const core::PlannerSpec& spec)
{
    switch (spec.objective) {
      case core::PlannerSpec::Objective::EnergyDelay:
        return c.predictedEnergyJ * c.predictedLatency;
      case core::PlannerSpec::Objective::EnergyKDelay:
        return std::pow(c.predictedEnergyJ, spec.energyExponent)
            * c.predictedLatency;
      default:
        return c.predictedLatency;
    }
}

bool
parse(int argc, char** argv, Options& opt)
{
    FlagSet flags("bt_explorer");
    flags.value("--device", &opt.device, "NAME",
                "pixel|oneplus|jetson|jetson-lp|manycore (default "
                "pixel)");
    flags.value("--app", &opt.app, "NAME",
                "dense|sparse|octree (default octree)");
    flags.value("--engine", &opt.engine, "NAME",
                "planner engine: solver|exhaustive|annealed (default "
                "solver; every mode honors it)");
    flags.value("--candidates", &opt.candidates, "K",
                "optimizer output size (default 20)");
    flags.flag("--no-autotune", &opt.no_autotune,
               "deploy the predicted-best schedule");
    flags.flag("--energy", &opt.energy,
               "report energy per task and power");
    flags.flag("--compare-dynamic", &opt.compare_dynamic,
               "also run the dynamic/data-parallel baselines");
    flags.value("--latency-slack", &opt.latency_slack, "F",
                "level-1 latency slack (default 0.45)");
    flags.value("--gapness-slack", &opt.gapness_slack, "F",
                "level-1 gapness slack (default 1.0)");
    flags.flag("--objective-edp", &opt.edp_objective,
               "rank candidates by energy-delay product");
    flags.value("--save-profile", &opt.save_profile, "FILE",
                "write the interference table as CSV");
    flags.value("--load-profile", &opt.load_profile, "FILE",
                "reuse a cached interference table");
    flags.value("--trace", &opt.trace_file, "FILE",
                "write the deployed run's timeline as Chrome trace "
                "JSON (chrome://tracing / Perfetto)");
    flags.value("--faults", &opt.faults_file, "FILE",
                "inject the FaultPlan in this JSON file into the "
                "deployed run (see docs/RUNTIME.md)");
    flags.value("--json", &opt.json_file, "FILE",
                "write a machine-readable report of the deployed run");
    flags.flag("--check", &opt.check,
               "run the app's device kernels under bt::check (races, "
               "OOB, launch geometry, block-order shuffles) instead of "
               "exploring; --app all sweeps every workload; exit 2 on "
               "findings");
    flags.flag("--check-fixtures", &opt.check_fixtures,
               "run the seeded-defect fixtures; exit 1 unless bt::check "
               "flags every one");
    flags.flag("--lint", &opt.lint,
               "statically analyze the app's pipeline, planner spec and "
               "run config (bt::lint) without executing anything; "
               "--app all sweeps every workload, --faults lints the "
               "plan too; exit 2 on findings");
    flags.flag("--lint-fixtures", &opt.lint_fixtures,
               "run the seeded-defect lint fixtures; exit 1 unless "
               "bt::lint flags every one");
    flags.flag("--serve", &opt.serve,
               "run the multi-tenant serving demo (bt::Service): a "
               "worker pool with PU leasing and the keyed schedule "
               "cache serves a mixed request stream; --json/--trace "
               "write the serving report and merged timeline");
    flags.value("--serve-requests", &opt.serve_requests, "N",
                "requests offered to the serving demo (default 200)");
    flags.value("--serve-workers", &opt.serve_workers, "N",
                "serving worker pool size (default 4)");
    flags.value("--serve-sessions", &opt.serve_sessions, "N",
                "tenant sessions in the request mix (default 4)");
    return flags.parse(argc, argv);
}

/** `--check-fixtures`: negative control - every seeded bug must fire. */
int
runCheckFixtures()
{
    bool all_flagged = true;
    for (const auto& r : check::runSeededDefects()) {
        std::printf("%-12s expect %-21s -> %s (%zu findings)\n",
                    r.name.c_str(),
                    std::string(check::findingKindName(r.expected))
                        .c_str(),
                    r.flagged ? "flagged" : "MISSED", r.totalFindings);
        all_flagged = all_flagged && r.flagged;
    }
    std::printf("%s\n", all_flagged
                            ? "all seeded defects flagged"
                            : "seeded defects MISSED - checker broken");
    return all_flagged ? 0 : 1;
}

/** `--lint-fixtures`: negative control - every seeded defect must
 *  lint with its expected diagnostic kind. */
int
runLintFixtures()
{
    bool all_flagged = true;
    for (const auto& r : lint::runSeededDefects()) {
        std::printf("%-22s expect %-22s -> %s (%zu findings)\n",
                    r.name.c_str(),
                    std::string(lint::diagnosticKindName(r.expected))
                        .c_str(),
                    r.flagged ? "flagged" : "MISSED", r.totalFindings);
        all_flagged = all_flagged && r.flagged;
    }
    std::printf("%s\n", all_flagged
                            ? "all seeded defects flagged"
                            : "seeded defects MISSED - linter broken");
    return all_flagged ? 0 : 1;
}

core::Application pickApp(const std::string& name);
platform::SocDescription pickDevice(const std::string& name);

/** `--lint`: static preflight of the selected workload(s) - pipeline
 *  IO, planner spec, run config and fault plan - with no execution. */
int
runLint(const Options& opt)
{
    std::vector<std::string> names;
    if (opt.app == "all")
        names = {"dense", "sparse", "octree"};
    else
        names = {opt.app};

    const auto soc = pickDevice(opt.device);
    core::PlannerSpec spec;
    spec.engine = core::plannerEngineFromName(opt.engine);
    spec.numCandidates = opt.candidates;
    spec.latencySlack = opt.latency_slack;
    spec.gapnessSlack = opt.gapness_slack;
    if (opt.edp_objective)
        spec.objective = core::PlannerSpec::Objective::EnergyDelay;

    runtime::RunConfig run;
    if (!opt.faults_file.empty()) {
        std::ifstream in(opt.faults_file);
        runtime::PlanParseError perr;
        auto plan = runtime::FaultPlan::fromJson(in, perr);
        if (!plan) {
            std::fprintf(stderr,
                         "could not parse fault plan %s: %s\n",
                         opt.faults_file.c_str(),
                         perr.toString().c_str());
            return 1;
        }
        run.faults = *plan;
    }

    lint::Report merged;
    for (const auto& name : names) {
        auto report = lint::lintPreflight(soc, pickApp(name), spec,
                                          run);
        std::printf("[%s] %s\n", name.c_str(),
                    report.summary().c_str());
        merged.merge(std::move(report));
    }
    merged.print(std::cout);

    if (!opt.json_file.empty()) {
        std::ofstream out(opt.json_file);
        merged.writeJson(out);
        std::printf("wrote lint report to %s\n",
                    opt.json_file.c_str());
    }
    return merged.clean() ? 0 : 2;
}

/** `--check`: sweep the selected workload(s) under bt::check, then
 *  plan each of them with the selected engine so the report also says
 *  what the planner would deploy on the chosen device. */
int
runCheck(const Options& opt)
{
    std::vector<std::string> names;
    if (opt.app == "all")
        names = {"dense", "sparse", "octree"};
    else
        names = {opt.app};

    check::Report merged;
    for (const auto& name : names) {
        auto report = apps::checkScaledApp(name);
        std::printf("[%s] %s\n", name.c_str(),
                    report.summary().c_str());
        merged.merge(std::move(report));
    }
    merged.print(std::cout);

    // Planning pass: same engine selection as --app / --serve.
    const auto soc = pickDevice(opt.device);
    const platform::PerfModel model(soc);
    core::PlannerSpec spec;
    spec.engine = core::plannerEngineFromName(opt.engine);
    std::string planning_json = "  \"planning\": {\"engine\": \""
        + std::string(core::plannerEngineName(spec.engine))
        + "\", \"apps\": [";
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto app = pickApp(names[i]);
        const auto profile = core::Profiler(model).profile(app);
        core::Optimizer optimizer(soc, profile.interference, spec);
        const auto cands = optimizer.optimize();
        const double cost = planCost(cands.front(), spec);
        std::printf("[%s] planned with the %s engine on %s: front "
                    "cost %.3f ms over %llu schedules\n",
                    names[i].c_str(),
                    core::plannerEngineName(spec.engine),
                    soc.name.c_str(), cost * 1e3,
                    static_cast<unsigned long long>(
                        optimizer.stats().spaceSize));
        planning_json += std::string(i == 0 ? "" : ", ")
            + "{\"app\": \"" + names[i] + "\", \"plan_cost\": "
            + std::to_string(cost) + "}";
    }
    planning_json += "]}\n";

    if (!opt.json_file.empty()) {
        std::ostringstream json;
        merged.writeJson(json);
        std::string text = json.str();
        // Splice the planning block into the check report object.
        text.insert(text.rfind('}'), ",\n" + planning_json);
        std::ofstream out(opt.json_file);
        out << text;
        std::printf("wrote check report to %s\n",
                    opt.json_file.c_str());
    }
    return merged.clean() ? 0 : 2;
}

/**
 * `--serve`: the multi-tenant serving demo. Every workload of the
 * device is registered as a tenant application; a mixed stream of
 * requests from --serve-sessions tenants runs through the worker pool,
 * and the serving report (throughput, latency percentiles, schedule
 * cache hit rate) is printed and optionally written as JSON.
 *
 * With --json the mode behaves like the others: the machine-readable
 * ServiceReport goes to the named file ("-" = stdout) and the human
 * summary moves to stderr, so piped consumers see only JSON.
 */
int
runServe(const Options& opt, const platform::SocDescription& soc)
{
    // Human-readable lines: stdout normally, stderr when a JSON
    // consumer owns stdout's role.
    std::FILE* hout = opt.json_file.empty() ? stdout : stderr;

    service::ServiceConfig cfg;
    cfg.workers = opt.serve_workers;
    cfg.queueCapacity = std::max(opt.serve_requests, 1);
    cfg.run.numTasks = 12;
    cfg.collectTraces = !opt.trace_file.empty();
    cfg.optimizer.engine = core::plannerEngineFromName(opt.engine);

    service::Service svc(soc, cfg);
    svc.registerApp(apps::alexnetDense());
    svc.registerApp(apps::alexnetSparse());
    svc.registerApp(apps::octreeApp());
    // Registered names differ per variant; take them from the apps.
    const std::vector<std::string> appNames
        = {apps::alexnetDense().name(), apps::alexnetSparse().name(),
           apps::octreeApp().name()};

    std::fprintf(hout,
                 "serving on %s: %d workers, %d tenant sessions, %d "
                 "requests\n",
                 soc.name.c_str(), cfg.workers, opt.serve_sessions,
                 opt.serve_requests);
    svc.start();
    for (int i = 0; i < opt.serve_requests; ++i) {
        service::Request req;
        req.session = i % std::max(opt.serve_sessions, 1);
        req.app = appNames[static_cast<std::size_t>(i)
                           % appNames.size()];
        svc.submit(std::move(req));
    }
    svc.drain();
    const auto report = svc.report();
    svc.stop();

    std::fprintf(hout,
                 "served %lld/%lld requests (%lld dropped, %lld "
                 "failed) in %.1f ms\n",
                 static_cast<long long>(report.completed),
                 static_cast<long long>(report.submitted),
                 static_cast<long long>(report.dropped),
                 static_cast<long long>(report.failed),
                 report.wallSeconds * 1e3);
    std::fprintf(hout,
                 "throughput: %.0f req/s | latency p50 %.3f ms, p99 "
                 "%.3f ms\n",
                 report.throughputRps, report.p50Ms, report.p99Ms);
    std::fprintf(hout,
                 "schedule cache: %.1f%% hit rate (%llu hits, %llu "
                 "misses, %llu evictions); %lld planner runs took "
                 "%.1f ms total\n",
                 report.cache.hitRate() * 1e2,
                 static_cast<unsigned long long>(report.cache.hits),
                 static_cast<unsigned long long>(report.cache.misses),
                 static_cast<unsigned long long>(
                     report.cache.evictions),
                 static_cast<long long>(report.plans),
                 report.planSeconds * 1e3);
    std::fprintf(hout,
                 "planner: %s engine (%lld tenants fell back to "
                 "annealed)\n",
                 report.plannerEngine.c_str(),
                 static_cast<long long>(report.annealedFallbacks));
    for (const auto& [session, count] : report.perSession)
        std::fprintf(hout, "  session %d: %lld requests\n", session,
                     static_cast<long long>(count));

    if (!opt.trace_file.empty()) {
        std::ofstream out(opt.trace_file);
        report.trace.writeChromeJson(out);
        std::fprintf(hout, "wrote merged serving timeline to %s\n",
                     opt.trace_file.c_str());
    }
    if (!opt.json_file.empty()) {
        if (opt.json_file == "-") {
            report.writeJson(std::cout);
        } else {
            std::ofstream out(opt.json_file);
            report.writeJson(out);
            std::fprintf(hout, "wrote serving report to %s\n",
                         opt.json_file.c_str());
        }
    }
    // Findings (lost or failed requests) exit 2, like --check/--lint.
    return report.completed == report.submitted
            && report.failed == 0
        ? 0
        : 2;
}

platform::SocDescription
pickDevice(const std::string& name)
{
    if (name == "pixel")
        return platform::pixel7a();
    if (name == "oneplus")
        return platform::oneplus11();
    if (name == "jetson")
        return platform::jetsonOrinNano();
    if (name == "jetson-lp")
        return platform::jetsonOrinNanoLp();
    if (name == "manycore")
        return platform::manycoreRig();
    bt::fatal("unknown device: ", name);
}

core::Application
pickApp(const std::string& name)
{
    if (name == "dense")
        return apps::alexnetDense();
    if (name == "sparse")
        return apps::alexnetSparse();
    if (name == "octree")
        return apps::octreeApp();
    bt::fatal("unknown application: ", name);
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return 1;

    if (opt.check_fixtures)
        return runCheckFixtures();
    if (opt.lint_fixtures)
        return runLintFixtures();
    if (opt.check)
        return runCheck(opt);
    if (opt.lint)
        return runLint(opt);
    if (opt.serve)
        return runServe(opt, pickDevice(opt.device));

    const auto soc = pickDevice(opt.device);
    const auto app = pickApp(opt.app);
    const platform::PerfModel model(soc);
    std::printf("device: %s | app: %s (%d stages)\n\n",
                soc.name.c_str(), app.name().c_str(), app.numStages());

    // Profiling, or a cached table.
    core::ProfileResult profile;
    if (!opt.load_profile.empty()) {
        std::ifstream in(opt.load_profile);
        auto loaded = core::ProfilingTable::loadCsv(in);
        if (!loaded) {
            std::fprintf(stderr, "could not parse %s\n",
                         opt.load_profile.c_str());
            return 1;
        }
        profile.interference = *loaded;
        profile.isolated = *loaded; // cached runs reuse one table
        std::printf("loaded cached profiling table from %s\n",
                    opt.load_profile.c_str());
    } else {
        const core::Profiler profiler(model);
        profile = profiler.profile(app);
        std::printf("profiled in %.0f virtual seconds\n",
                    profile.profilingCostSeconds);
    }
    if (!opt.save_profile.empty()) {
        std::ofstream out(opt.save_profile);
        profile.interference.saveCsv(out);
        std::printf("saved interference table to %s\n",
                    opt.save_profile.c_str());
    }
    std::printf("\ninterference-aware table (ms):\n");
    profile.interference.print(std::cout);

    // Optimize (+ autotune).
    core::PlannerSpec ocfg;
    ocfg.engine = core::plannerEngineFromName(opt.engine);
    ocfg.numCandidates = opt.candidates;
    ocfg.latencySlack = opt.latency_slack;
    ocfg.gapnessSlack = opt.gapness_slack;
    if (opt.edp_objective)
        ocfg.objective = core::PlannerSpec::Objective::EnergyDelay;
    core::Optimizer optimizer(soc, profile.interference, ocfg);
    const auto candidates = optimizer.optimize();
    const double front_cost = planCost(candidates.front(), ocfg);
    std::printf("\nplanner: %s engine, %llu-schedule space, front "
                "cost %.3f ms\n",
                core::plannerEngineName(ocfg.engine),
                static_cast<unsigned long long>(
                    optimizer.stats().spaceSize),
                front_cost * 1e3);

    // Tuning always measures fault-free; an injected FaultPlan applies
    // only to the deployment run below.
    const core::SimExecutor executor(model);
    core::Schedule best = candidates.front().schedule;
    if (!opt.no_autotune) {
        const core::AutoTuner tuner(executor);
        const auto tuned = tuner.tune(app, candidates);
        best = tuned.best().candidate.schedule;
        std::printf("\nautotuned over %zu candidates (gain %.2fx, "
                    "campaign %.0f s virtual)\n",
                    tuned.all.size(), tuned.autotuningGain(),
                    tuned.campaignCostSeconds);
    }

    core::SimExecConfig deploy_cfg;
    if (!opt.faults_file.empty()) {
        std::ifstream in(opt.faults_file);
        runtime::PlanParseError perr;
        auto plan = runtime::FaultPlan::fromJson(in, perr);
        if (!plan) {
            std::fprintf(stderr,
                         "could not parse fault plan %s: %s\n",
                         opt.faults_file.c_str(),
                         perr.toString().c_str());
            return 1;
        }
        plan->validate(soc.numPus());
        deploy_cfg.faults = *plan;
        std::printf("\ninjecting fault plan from %s (%zu slowdowns, "
                    "%zu transients, %zu stragglers, %zu dropouts)\n",
                    opt.faults_file.c_str(),
                    deploy_cfg.faults.slowdowns.size(),
                    deploy_cfg.faults.transients.size(),
                    deploy_cfg.faults.stragglers.size(),
                    deploy_cfg.faults.dropouts.size());
    }

    std::vector<std::string> names;
    for (const auto& s : app.stages())
        names.push_back(s.name());
    const core::SimExecutor deployer(model, deploy_cfg);
    const auto run = deployer.execute(app, best);
    std::printf("\ndeployed schedule: %s\n",
                best.toString(soc, names).c_str());
    std::printf("latency: %.3f ms/task (makespan %.1f ms for %d "
                "tasks)\n",
                run.latencyMs(), run.makespanSeconds * 1e3, run.tasks);

    // Baselines.
    const core::BetterTogether flow(soc);
    const double cpu_ms
        = flow.measureHomogeneous(app, soc.bigCpuIndex()) * 1e3;
    const double gpu_ms
        = flow.measureHomogeneous(app, soc.gpuIndex()) * 1e3;
    std::printf("baselines: CPU-only %.3f ms | GPU-only %.3f ms | "
                "speedup over best %.2fx\n",
                cpu_ms, gpu_ms,
                std::min(cpu_ms, gpu_ms) / run.latencyMs());

    if (opt.energy) {
        std::printf("\nenergy: %.2f mJ/task, average power %.2f W "
                    "(device peak %.1f W)\n",
                    run.energyPerTaskJ() * 1e3, run.averagePowerW(),
                    soc.peakPowerW());
    }

    // Recovery statistics (all zero unless a fault plan was injected).
    if (!run.recovery.cleanRun()) {
        const auto& rec = run.recovery;
        std::printf("\nrecovery: %d transients, %d timeouts, %d "
                    "stragglers, %d dropouts -> %d retries, %d "
                    "remaps, %d replans, %d unrecovered (backoff "
                    "%.3f ms)\n",
                    rec.transientFaults, rec.timeouts, rec.stragglers,
                    rec.dropouts, rec.retries, rec.remaps, rec.replans,
                    rec.unrecovered, rec.backoffSeconds * 1e3);
    }

    // Timeline statistics derived from the deployed run's trace.
    const auto stats = run.trace.stats();
    {
        std::printf("\ntimeline: %d stage executions, %d recovery "
                    "events, bubble %.1f%%, interfered %.1f%%, mean "
                    "queue wait %.3f ms\n",
                    stats.events, stats.recoveryEvents,
                    stats.bubbleFraction * 1e2,
                    stats.interferedFraction * 1e2,
                    stats.meanQueueWaitSeconds * 1e3);
        for (int p = 0; p < soc.numPus(); ++p) {
            const auto& pu = stats.perPu[static_cast<std::size_t>(p)];
            if (pu.events == 0)
                continue;
            std::printf("  %-10s occupancy %5.1f%%  (%d stage "
                        "executions)\n",
                        soc.pu(p).label.c_str(), pu.occupancy * 1e2,
                        pu.events);
        }
    }
    if (!opt.trace_file.empty()) {
        std::ofstream out(opt.trace_file);
        run.trace.writeChromeJson(out);
        std::printf("wrote Chrome trace JSON to %s (load in "
                    "chrome://tracing or Perfetto)\n",
                    opt.trace_file.c_str());
    }

    if (opt.compare_dynamic) {
        const core::DynamicExecutor dyn(model, profile.interference);
        const auto dyn_run = dyn.execute(app);
        const double dp_ms
            = core::dataParallelLatency(app, profile.interference)
            * 1e3;
        std::printf("\nalternatives: dynamic greedy %.3f ms/task "
                    "(50us dispatch) | data-parallel %.3f ms/task "
                    "(predicted)\n",
                    dyn_run.latencyMs(), dp_ms);
    }

    // Machine-readable report of the deployed run.
    if (!opt.json_file.empty()) {
        std::ofstream out(opt.json_file);
        const auto& rec = run.recovery;
        out << "{\n"
            << "  \"device\": \"" << soc.name << "\",\n"
            << "  \"app\": \"" << app.name() << "\",\n"
            << "  \"engine\": \""
            << core::plannerEngineName(ocfg.engine) << "\",\n"
            << "  \"plan_cost\": " << front_cost << ",\n"
            << "  \"schedule\": \"" << best.toString(soc, names)
            << "\",\n"
            << "  \"tasks\": " << run.tasks << ",\n"
            << "  \"latency_ms\": " << run.latencyMs() << ",\n"
            << "  \"makespan_ms\": " << run.makespanSeconds * 1e3
            << ",\n"
            << "  \"mean_latency_ms\": "
            << run.meanLatencySeconds * 1e3 << ",\n"
            << "  \"energy_per_task_mj\": "
            << run.energyPerTaskJ() * 1e3 << ",\n"
            << "  \"average_power_w\": " << run.averagePowerW()
            << ",\n"
            << "  \"cpu_baseline_ms\": " << cpu_ms << ",\n"
            << "  \"gpu_baseline_ms\": " << gpu_ms << ",\n"
            << "  \"valid\": " << (run.valid() ? "true" : "false")
            << ",\n"
            << "  \"trace\": {\"stage_events\": " << stats.events
            << ", \"recovery_events\": " << stats.recoveryEvents
            << ", \"bubble_fraction\": " << stats.bubbleFraction
            << ", \"interfered_fraction\": "
            << stats.interferedFraction
            << ", \"mean_queue_wait_ms\": "
            << stats.meanQueueWaitSeconds * 1e3 << "},\n"
            << "  \"recovery\": {\"transient_faults\": "
            << rec.transientFaults << ", \"timeouts\": "
            << rec.timeouts << ", \"stragglers\": " << rec.stragglers
            << ", \"retries\": " << rec.retries << ", \"remaps\": "
            << rec.remaps << ", \"dropouts\": " << rec.dropouts
            << ", \"replans\": " << rec.replans
            << ", \"unrecovered\": " << rec.unrecovered
            << ", \"backoff_ms\": " << rec.backoffSeconds * 1e3
            << "}\n"
            << "}\n";
        std::printf("wrote JSON report to %s\n",
                    opt.json_file.c_str());
    }
    // A deployed run with invalid outputs is a finding: exit 2, like
    // --check/--lint, so CI sweeps can rely on one contract.
    if (!run.valid()) {
        std::fprintf(stderr,
                     "deployed run produced invalid outputs\n");
        return 2;
    }
    return 0;
}
