/**
 * @file
 * bt_explorer: a command-line front end to the whole framework. Pick a
 * simulated device and an application, tweak the optimizer, cache
 * profiling tables on disk, and optionally compare against the dynamic
 * and data-parallel baselines and report energy.
 *
 *     bt_explorer --device pixel --app octree
 *     bt_explorer --device jetson --app sparse --no-autotune --energy
 *     bt_explorer --device oneplus --app dense \
 *                 --save-profile /tmp/p.csv
 *     bt_explorer --device oneplus --app dense \
 *                 --load-profile /tmp/p.csv --compare-dynamic
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/alexnet.hpp"
#include "common/logging.hpp"
#include "apps/octree_app.hpp"
#include "core/data_parallel.hpp"
#include "core/dynamic_executor.hpp"
#include "core/pipeline.hpp"
#include "platform/devices.hpp"

using namespace bt;

namespace {

struct Options
{
    std::string device = "pixel";
    std::string app = "octree";
    int candidates = 20;
    bool autotune = true;
    bool energy = false;
    bool compare_dynamic = false;
    double latency_slack = 0.45;
    double gapness_slack = 1.0;
    bool edp_objective = false;
    std::string save_profile;
    std::string load_profile;
    std::string trace_file;
};

void
usage()
{
    std::printf(
        "usage: bt_explorer [options]\n"
        "  --device pixel|oneplus|jetson|jetson-lp   (default pixel)\n"
        "  --app dense|sparse|octree                 (default octree)\n"
        "  --candidates K          optimizer output size (default 20)\n"
        "  --no-autotune           deploy the predicted-best schedule\n"
        "  --energy                report energy per task and power\n"
        "  --compare-dynamic       also run the dynamic/date-parallel "
        "baselines\n"
        "  --latency-slack F       level-1 latency slack (default "
        "0.45)\n"
        "  --gapness-slack F       level-1 gapness slack (default "
        "1.0)\n"
        "  --objective-edp         rank candidates by energy-delay "
        "product\n"
        "  --save-profile FILE     write the interference table as "
        "CSV\n"
        "  --load-profile FILE     reuse a cached interference table\n"
        "  --trace FILE            write the deployed run's timeline "
        "as Chrome\n"
        "                          trace JSON (chrome://tracing / "
        "Perfetto)\n");
}

bool
parse(int argc, char** argv, Options& opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](std::string& out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return true;
        };
        std::string value;
        if (arg == "--device" && next(value)) {
            opt.device = value;
        } else if (arg == "--app" && next(value)) {
            opt.app = value;
        } else if (arg == "--candidates" && next(value)) {
            opt.candidates = std::stoi(value);
        } else if (arg == "--no-autotune") {
            opt.autotune = false;
        } else if (arg == "--energy") {
            opt.energy = true;
        } else if (arg == "--compare-dynamic") {
            opt.compare_dynamic = true;
        } else if (arg == "--objective-edp") {
            opt.edp_objective = true;
        } else if (arg == "--latency-slack" && next(value)) {
            opt.latency_slack = std::stod(value);
        } else if (arg == "--gapness-slack" && next(value)) {
            opt.gapness_slack = std::stod(value);
        } else if (arg == "--save-profile" && next(value)) {
            opt.save_profile = value;
        } else if (arg == "--load-profile" && next(value)) {
            opt.load_profile = value;
        } else if (arg == "--trace" && next(value)) {
            opt.trace_file = value;
        } else {
            usage();
            return false;
        }
    }
    return true;
}

platform::SocDescription
pickDevice(const std::string& name)
{
    if (name == "pixel")
        return platform::pixel7a();
    if (name == "oneplus")
        return platform::oneplus11();
    if (name == "jetson")
        return platform::jetsonOrinNano();
    if (name == "jetson-lp")
        return platform::jetsonOrinNanoLp();
    bt::fatal("unknown device: ", name);
}

core::Application
pickApp(const std::string& name)
{
    if (name == "dense")
        return apps::alexnetDense();
    if (name == "sparse")
        return apps::alexnetSparse();
    if (name == "octree")
        return apps::octreeApp();
    bt::fatal("unknown application: ", name);
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return 1;

    const auto soc = pickDevice(opt.device);
    const auto app = pickApp(opt.app);
    const platform::PerfModel model(soc);
    std::printf("device: %s | app: %s (%d stages)\n\n",
                soc.name.c_str(), app.name().c_str(), app.numStages());

    // Profiling, or a cached table.
    core::ProfileResult profile;
    if (!opt.load_profile.empty()) {
        std::ifstream in(opt.load_profile);
        auto loaded = core::ProfilingTable::loadCsv(in);
        if (!loaded) {
            std::fprintf(stderr, "could not parse %s\n",
                         opt.load_profile.c_str());
            return 1;
        }
        profile.interference = *loaded;
        profile.isolated = *loaded; // cached runs reuse one table
        std::printf("loaded cached profiling table from %s\n",
                    opt.load_profile.c_str());
    } else {
        const core::Profiler profiler(model);
        profile = profiler.profile(app);
        std::printf("profiled in %.0f virtual seconds\n",
                    profile.profilingCostSeconds);
    }
    if (!opt.save_profile.empty()) {
        std::ofstream out(opt.save_profile);
        profile.interference.saveCsv(out);
        std::printf("saved interference table to %s\n",
                    opt.save_profile.c_str());
    }
    std::printf("\ninterference-aware table (ms):\n");
    profile.interference.print(std::cout);

    // Optimize (+ autotune).
    core::OptimizerConfig ocfg;
    ocfg.numCandidates = opt.candidates;
    ocfg.latencySlack = opt.latency_slack;
    ocfg.gapnessSlack = opt.gapness_slack;
    if (opt.edp_objective)
        ocfg.objective = core::OptimizerConfig::Objective::EnergyDelay;
    core::Optimizer optimizer(soc, profile.interference, ocfg);
    const auto candidates = optimizer.optimize();

    const core::SimExecutor executor(model);
    core::Schedule best = candidates.front().schedule;
    if (opt.autotune) {
        const core::AutoTuner tuner(executor);
        const auto tuned = tuner.tune(app, candidates);
        best = tuned.best().candidate.schedule;
        std::printf("\nautotuned over %zu candidates (gain %.2fx, "
                    "campaign %.0f s virtual)\n",
                    tuned.all.size(), tuned.autotuningGain(),
                    tuned.campaignCostSeconds);
    }

    std::vector<std::string> names;
    for (const auto& s : app.stages())
        names.push_back(s.name());
    const auto run = executor.execute(app, best);
    std::printf("\ndeployed schedule: %s\n",
                best.toString(soc, names).c_str());
    std::printf("latency: %.3f ms/task (makespan %.1f ms for %d "
                "tasks)\n",
                run.latencyMs(), run.makespanSeconds * 1e3, run.tasks);

    // Baselines.
    const core::BetterTogether flow(soc);
    const double cpu_ms
        = flow.measureHomogeneous(app, soc.bigCpuIndex()) * 1e3;
    const double gpu_ms
        = flow.measureHomogeneous(app, soc.gpuIndex()) * 1e3;
    std::printf("baselines: CPU-only %.3f ms | GPU-only %.3f ms | "
                "speedup over best %.2fx\n",
                cpu_ms, gpu_ms,
                std::min(cpu_ms, gpu_ms) / run.latencyMs());

    if (opt.energy) {
        std::printf("\nenergy: %.2f mJ/task, average power %.2f W "
                    "(device peak %.1f W)\n",
                    run.energyPerTaskJ() * 1e3, run.averagePowerW(),
                    soc.peakPowerW());
    }

    // Timeline statistics derived from the deployed run's trace.
    {
        const auto stats = run.trace.stats();
        std::printf("\ntimeline: %d stage executions, bubble %.1f%%, "
                    "interfered %.1f%%, mean queue wait %.3f ms\n",
                    stats.events, stats.bubbleFraction * 1e2,
                    stats.interferedFraction * 1e2,
                    stats.meanQueueWaitSeconds * 1e3);
        for (int p = 0; p < soc.numPus(); ++p) {
            const auto& pu = stats.perPu[static_cast<std::size_t>(p)];
            if (pu.events == 0)
                continue;
            std::printf("  %-10s occupancy %5.1f%%  (%d stage "
                        "executions)\n",
                        soc.pu(p).label.c_str(), pu.occupancy * 1e2,
                        pu.events);
        }
    }
    if (!opt.trace_file.empty()) {
        std::ofstream out(opt.trace_file);
        run.trace.writeChromeJson(out);
        std::printf("wrote Chrome trace JSON to %s (load in "
                    "chrome://tracing or Perfetto)\n",
                    opt.trace_file.c_str());
    }

    if (opt.compare_dynamic) {
        const core::DynamicExecutor dyn(model, profile.interference);
        const auto dyn_run = dyn.execute(app);
        const double dp_ms
            = core::dataParallelLatency(app, profile.interference)
            * 1e3;
        std::printf("\nalternatives: dynamic greedy %.3f ms/task "
                    "(50us dispatch) | data-parallel %.3f ms/task "
                    "(predicted)\n",
                    dyn_run.latencyMs(), dp_ms);
    }
    return 0;
}
