/**
 * @file
 * Real concurrent pipeline execution on the local host: the octree
 * application runs through the native BT-Implementer - long-lived
 * dispatcher threads, lock-free SPSC queues, recycled TaskObjects -
 * with every stage's kernels executing functionally and the outputs
 * validated per task. This is the executor a deployment on a physical
 * UMA SoC would use (paper Sec. 3.4).
 */

#include <cstdio>

#include "apps/octree_app.hpp"
#include "core/native_executor.hpp"
#include "platform/devices.hpp"

using namespace bt;

int
main()
{
    const auto soc = platform::nativeHost();
    std::printf("Native host: %d cores; running the 7-stage octree "
                "pipeline with real dispatcher threads\n",
                soc.pu(0).cores);

    auto app = apps::octreeApp(apps::OctreeConfig{
        .numPoints = 20000, .withValidator = true});

    for (const auto& assignment :
         {std::vector<int>{0, 0, 0, 0, 0, 0, 0},
          std::vector<int>{0, 0, 0, 1, 1, 1, 1},
          std::vector<int>{1, 1, 0, 0, 0, 0, 0}}) {
        const auto schedule = core::Schedule::fromAssignment(
            assignment);
        std::vector<std::string> names;
        for (const auto& s : app.stages())
            names.push_back(s.name());

        core::NativeExecConfig cfg;
        cfg.numTasks = 12;
        const core::NativeExecutor executor(soc, cfg);
        const auto result = executor.execute(app, schedule);

        std::printf("\nschedule %s\n",
                    schedule.toString(soc, names).c_str());
        std::printf("  %d tasks in %.1f ms wall clock "
                    "(%.2f ms/task steady state)\n",
                    result.tasks, result.makespanSeconds * 1e3,
                    result.taskIntervalSeconds * 1e3);
        std::printf("  outputs: %s; affinity: %s\n",
                    result.valid() ? "all validated"
                                   : result.validationErrors.front()
                                         .c_str(),
                    result.affinityApplied ? "pinned"
                                           : "best effort");

        const auto stats = result.trace.stats();
        std::printf("  timeline: %d stage executions, bubble %.1f%%, "
                    "interfered %.1f%%, mean queue wait %.3f ms\n",
                    stats.events, stats.bubbleFraction * 1e2,
                    stats.interferedFraction * 1e2,
                    stats.meanQueueWaitSeconds * 1e3);
    }
    return 0;
}
