# Empty compiler generated dependencies file for octree_mapping.
# This may be replaced when dependencies are built.
