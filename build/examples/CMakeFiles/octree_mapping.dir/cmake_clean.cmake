file(REMOVE_RECURSE
  "CMakeFiles/octree_mapping.dir/octree_mapping.cpp.o"
  "CMakeFiles/octree_mapping.dir/octree_mapping.cpp.o.d"
  "octree_mapping"
  "octree_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octree_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
