file(REMOVE_RECURSE
  "CMakeFiles/bt_explorer.dir/bt_explorer.cpp.o"
  "CMakeFiles/bt_explorer.dir/bt_explorer.cpp.o.d"
  "bt_explorer"
  "bt_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
