# Empty compiler generated dependencies file for bt_explorer.
# This may be replaced when dependencies are built.
