# Empty dependencies file for native_pipeline.
# This may be replaced when dependencies are built.
