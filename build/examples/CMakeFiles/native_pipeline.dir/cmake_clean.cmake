file(REMOVE_RECURSE
  "CMakeFiles/native_pipeline.dir/native_pipeline.cpp.o"
  "CMakeFiles/native_pipeline.dir/native_pipeline.cpp.o.d"
  "native_pipeline"
  "native_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
