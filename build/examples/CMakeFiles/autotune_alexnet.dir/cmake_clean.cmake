file(REMOVE_RECURSE
  "CMakeFiles/autotune_alexnet.dir/autotune_alexnet.cpp.o"
  "CMakeFiles/autotune_alexnet.dir/autotune_alexnet.cpp.o.d"
  "autotune_alexnet"
  "autotune_alexnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_alexnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
