# Empty compiler generated dependencies file for autotune_alexnet.
# This may be replaced when dependencies are built.
