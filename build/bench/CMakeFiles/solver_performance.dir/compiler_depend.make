# Empty compiler generated dependencies file for solver_performance.
# This may be replaced when dependencies are built.
