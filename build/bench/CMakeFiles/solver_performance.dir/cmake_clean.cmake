file(REMOVE_RECURSE
  "CMakeFiles/solver_performance.dir/solver_performance.cpp.o"
  "CMakeFiles/solver_performance.dir/solver_performance.cpp.o.d"
  "solver_performance"
  "solver_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
