file(REMOVE_RECURSE
  "CMakeFiles/table4_autotuning.dir/table4_autotuning.cpp.o"
  "CMakeFiles/table4_autotuning.dir/table4_autotuning.cpp.o.d"
  "table4_autotuning"
  "table4_autotuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_autotuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
