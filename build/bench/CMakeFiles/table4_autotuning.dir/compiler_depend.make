# Empty compiler generated dependencies file for table4_autotuning.
# This may be replaced when dependencies are built.
