file(REMOVE_RECURSE
  "CMakeFiles/fig6_correlation.dir/fig6_correlation.cpp.o"
  "CMakeFiles/fig6_correlation.dir/fig6_correlation.cpp.o.d"
  "fig6_correlation"
  "fig6_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
