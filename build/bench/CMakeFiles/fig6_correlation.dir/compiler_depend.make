# Empty compiler generated dependencies file for fig6_correlation.
# This may be replaced when dependencies are built.
