# Empty compiler generated dependencies file for case_study_features.
# This may be replaced when dependencies are built.
