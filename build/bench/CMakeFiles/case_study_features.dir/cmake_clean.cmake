file(REMOVE_RECURSE
  "CMakeFiles/case_study_features.dir/case_study_features.cpp.o"
  "CMakeFiles/case_study_features.dir/case_study_features.cpp.o.d"
  "case_study_features"
  "case_study_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
