file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_noise.dir/sensitivity_noise.cpp.o"
  "CMakeFiles/sensitivity_noise.dir/sensitivity_noise.cpp.o.d"
  "sensitivity_noise"
  "sensitivity_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
