# Empty compiler generated dependencies file for sensitivity_noise.
# This may be replaced when dependencies are built.
