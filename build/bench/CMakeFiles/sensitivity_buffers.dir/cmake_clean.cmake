file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_buffers.dir/sensitivity_buffers.cpp.o"
  "CMakeFiles/sensitivity_buffers.dir/sensitivity_buffers.cpp.o.d"
  "sensitivity_buffers"
  "sensitivity_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
