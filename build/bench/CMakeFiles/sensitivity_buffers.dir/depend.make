# Empty dependencies file for sensitivity_buffers.
# This may be replaced when dependencies are built.
