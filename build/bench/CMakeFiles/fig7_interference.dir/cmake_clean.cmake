file(REMOVE_RECURSE
  "CMakeFiles/fig7_interference.dir/fig7_interference.cpp.o"
  "CMakeFiles/fig7_interference.dir/fig7_interference.cpp.o.d"
  "fig7_interference"
  "fig7_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
