# Empty compiler generated dependencies file for fig7_interference.
# This may be replaced when dependencies are built.
