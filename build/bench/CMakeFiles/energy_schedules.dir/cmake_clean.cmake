file(REMOVE_RECURSE
  "CMakeFiles/energy_schedules.dir/energy_schedules.cpp.o"
  "CMakeFiles/energy_schedules.dir/energy_schedules.cpp.o.d"
  "energy_schedules"
  "energy_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
