# Empty compiler generated dependencies file for energy_schedules.
# This may be replaced when dependencies are built.
