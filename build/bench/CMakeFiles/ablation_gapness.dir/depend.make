# Empty dependencies file for ablation_gapness.
# This may be replaced when dependencies are built.
