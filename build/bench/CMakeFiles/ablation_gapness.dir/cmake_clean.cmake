file(REMOVE_RECURSE
  "CMakeFiles/ablation_gapness.dir/ablation_gapness.cpp.o"
  "CMakeFiles/ablation_gapness.dir/ablation_gapness.cpp.o.d"
  "ablation_gapness"
  "ablation_gapness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gapness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
