# Empty dependencies file for fig1_stage_heterogeneity.
# This may be replaced when dependencies are built.
