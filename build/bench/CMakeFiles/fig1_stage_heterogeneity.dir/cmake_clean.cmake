file(REMOVE_RECURSE
  "CMakeFiles/fig1_stage_heterogeneity.dir/fig1_stage_heterogeneity.cpp.o"
  "CMakeFiles/fig1_stage_heterogeneity.dir/fig1_stage_heterogeneity.cpp.o.d"
  "fig1_stage_heterogeneity"
  "fig1_stage_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stage_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
