file(REMOVE_RECURSE
  "CMakeFiles/bt_bench_common.dir/common/bench_util.cpp.o"
  "CMakeFiles/bt_bench_common.dir/common/bench_util.cpp.o.d"
  "libbt_bench_common.a"
  "libbt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
