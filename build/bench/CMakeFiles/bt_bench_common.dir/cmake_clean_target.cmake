file(REMOVE_RECURSE
  "libbt_bench_common.a"
)
