# Empty dependencies file for bt_bench_common.
# This may be replaced when dependencies are built.
