file(REMOVE_RECURSE
  "CMakeFiles/spsc_micro.dir/spsc_micro.cpp.o"
  "CMakeFiles/spsc_micro.dir/spsc_micro.cpp.o.d"
  "spsc_micro"
  "spsc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
