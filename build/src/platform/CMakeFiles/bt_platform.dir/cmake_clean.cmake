file(REMOVE_RECURSE
  "CMakeFiles/bt_platform.dir/devices.cpp.o"
  "CMakeFiles/bt_platform.dir/devices.cpp.o.d"
  "CMakeFiles/bt_platform.dir/perf_model.cpp.o"
  "CMakeFiles/bt_platform.dir/perf_model.cpp.o.d"
  "CMakeFiles/bt_platform.dir/soc.cpp.o"
  "CMakeFiles/bt_platform.dir/soc.cpp.o.d"
  "libbt_platform.a"
  "libbt_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
