# Empty compiler generated dependencies file for bt_platform.
# This may be replaced when dependencies are built.
