file(REMOVE_RECURSE
  "libbt_platform.a"
)
