
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/devices.cpp" "src/platform/CMakeFiles/bt_platform.dir/devices.cpp.o" "gcc" "src/platform/CMakeFiles/bt_platform.dir/devices.cpp.o.d"
  "/root/repo/src/platform/perf_model.cpp" "src/platform/CMakeFiles/bt_platform.dir/perf_model.cpp.o" "gcc" "src/platform/CMakeFiles/bt_platform.dir/perf_model.cpp.o.d"
  "/root/repo/src/platform/soc.cpp" "src/platform/CMakeFiles/bt_platform.dir/soc.cpp.o" "gcc" "src/platform/CMakeFiles/bt_platform.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bt_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
