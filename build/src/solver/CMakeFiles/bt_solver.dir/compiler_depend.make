# Empty compiler generated dependencies file for bt_solver.
# This may be replaced when dependencies are built.
