file(REMOVE_RECURSE
  "libbt_solver.a"
)
