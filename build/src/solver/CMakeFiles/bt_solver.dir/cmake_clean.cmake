file(REMOVE_RECURSE
  "CMakeFiles/bt_solver.dir/model.cpp.o"
  "CMakeFiles/bt_solver.dir/model.cpp.o.d"
  "CMakeFiles/bt_solver.dir/solver.cpp.o"
  "CMakeFiles/bt_solver.dir/solver.cpp.o.d"
  "libbt_solver.a"
  "libbt_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
