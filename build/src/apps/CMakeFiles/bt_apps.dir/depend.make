# Empty dependencies file for bt_apps.
# This may be replaced when dependencies are built.
