file(REMOVE_RECURSE
  "CMakeFiles/bt_apps.dir/alexnet.cpp.o"
  "CMakeFiles/bt_apps.dir/alexnet.cpp.o.d"
  "CMakeFiles/bt_apps.dir/features.cpp.o"
  "CMakeFiles/bt_apps.dir/features.cpp.o.d"
  "CMakeFiles/bt_apps.dir/octree_app.cpp.o"
  "CMakeFiles/bt_apps.dir/octree_app.cpp.o.d"
  "libbt_apps.a"
  "libbt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
