file(REMOVE_RECURSE
  "libbt_apps.a"
)
