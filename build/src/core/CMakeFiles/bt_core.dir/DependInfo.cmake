
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/application.cpp" "src/core/CMakeFiles/bt_core.dir/application.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/application.cpp.o.d"
  "/root/repo/src/core/autotuner.cpp" "src/core/CMakeFiles/bt_core.dir/autotuner.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/autotuner.cpp.o.d"
  "/root/repo/src/core/data_parallel.cpp" "src/core/CMakeFiles/bt_core.dir/data_parallel.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/data_parallel.cpp.o.d"
  "/root/repo/src/core/dynamic_executor.cpp" "src/core/CMakeFiles/bt_core.dir/dynamic_executor.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/dynamic_executor.cpp.o.d"
  "/root/repo/src/core/native_executor.cpp" "src/core/CMakeFiles/bt_core.dir/native_executor.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/native_executor.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/bt_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/bt_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/bt_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/profiling_table.cpp" "src/core/CMakeFiles/bt_core.dir/profiling_table.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/profiling_table.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/bt_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/sim_executor.cpp" "src/core/CMakeFiles/bt_core.dir/sim_executor.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/sim_executor.cpp.o.d"
  "/root/repo/src/core/task_object.cpp" "src/core/CMakeFiles/bt_core.dir/task_object.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/task_object.cpp.o.d"
  "/root/repo/src/core/usm_buffer.cpp" "src/core/CMakeFiles/bt_core.dir/usm_buffer.cpp.o" "gcc" "src/core/CMakeFiles/bt_core.dir/usm_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bt_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/bt_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/bt_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
