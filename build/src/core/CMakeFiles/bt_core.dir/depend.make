# Empty dependencies file for bt_core.
# This may be replaced when dependencies are built.
