file(REMOVE_RECURSE
  "CMakeFiles/bt_core.dir/application.cpp.o"
  "CMakeFiles/bt_core.dir/application.cpp.o.d"
  "CMakeFiles/bt_core.dir/autotuner.cpp.o"
  "CMakeFiles/bt_core.dir/autotuner.cpp.o.d"
  "CMakeFiles/bt_core.dir/data_parallel.cpp.o"
  "CMakeFiles/bt_core.dir/data_parallel.cpp.o.d"
  "CMakeFiles/bt_core.dir/dynamic_executor.cpp.o"
  "CMakeFiles/bt_core.dir/dynamic_executor.cpp.o.d"
  "CMakeFiles/bt_core.dir/native_executor.cpp.o"
  "CMakeFiles/bt_core.dir/native_executor.cpp.o.d"
  "CMakeFiles/bt_core.dir/optimizer.cpp.o"
  "CMakeFiles/bt_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/bt_core.dir/pipeline.cpp.o"
  "CMakeFiles/bt_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/bt_core.dir/profiler.cpp.o"
  "CMakeFiles/bt_core.dir/profiler.cpp.o.d"
  "CMakeFiles/bt_core.dir/profiling_table.cpp.o"
  "CMakeFiles/bt_core.dir/profiling_table.cpp.o.d"
  "CMakeFiles/bt_core.dir/schedule.cpp.o"
  "CMakeFiles/bt_core.dir/schedule.cpp.o.d"
  "CMakeFiles/bt_core.dir/sim_executor.cpp.o"
  "CMakeFiles/bt_core.dir/sim_executor.cpp.o.d"
  "CMakeFiles/bt_core.dir/task_object.cpp.o"
  "CMakeFiles/bt_core.dir/task_object.cpp.o.d"
  "CMakeFiles/bt_core.dir/usm_buffer.cpp.o"
  "CMakeFiles/bt_core.dir/usm_buffer.cpp.o.d"
  "libbt_core.a"
  "libbt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
