file(REMOVE_RECURSE
  "libbt_core.a"
)
