file(REMOVE_RECURSE
  "libbt_common.a"
)
