file(REMOVE_RECURSE
  "CMakeFiles/bt_common.dir/csv.cpp.o"
  "CMakeFiles/bt_common.dir/csv.cpp.o.d"
  "CMakeFiles/bt_common.dir/logging.cpp.o"
  "CMakeFiles/bt_common.dir/logging.cpp.o.d"
  "CMakeFiles/bt_common.dir/rng.cpp.o"
  "CMakeFiles/bt_common.dir/rng.cpp.o.d"
  "CMakeFiles/bt_common.dir/stats.cpp.o"
  "CMakeFiles/bt_common.dir/stats.cpp.o.d"
  "CMakeFiles/bt_common.dir/table.cpp.o"
  "CMakeFiles/bt_common.dir/table.cpp.o.d"
  "libbt_common.a"
  "libbt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
