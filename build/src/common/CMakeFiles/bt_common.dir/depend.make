# Empty dependencies file for bt_common.
# This may be replaced when dependencies are built.
