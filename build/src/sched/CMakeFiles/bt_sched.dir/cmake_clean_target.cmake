file(REMOVE_RECURSE
  "libbt_sched.a"
)
