file(REMOVE_RECURSE
  "CMakeFiles/bt_sched.dir/affinity.cpp.o"
  "CMakeFiles/bt_sched.dir/affinity.cpp.o.d"
  "CMakeFiles/bt_sched.dir/thread_pool.cpp.o"
  "CMakeFiles/bt_sched.dir/thread_pool.cpp.o.d"
  "libbt_sched.a"
  "libbt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
