# Empty compiler generated dependencies file for bt_sched.
# This may be replaced when dependencies are built.
