file(REMOVE_RECURSE
  "libbt_simt.a"
)
