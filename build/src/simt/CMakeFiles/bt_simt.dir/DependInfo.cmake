
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/algorithms.cpp" "src/simt/CMakeFiles/bt_simt.dir/algorithms.cpp.o" "gcc" "src/simt/CMakeFiles/bt_simt.dir/algorithms.cpp.o.d"
  "/root/repo/src/simt/simt.cpp" "src/simt/CMakeFiles/bt_simt.dir/simt.cpp.o" "gcc" "src/simt/CMakeFiles/bt_simt.dir/simt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bt_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
