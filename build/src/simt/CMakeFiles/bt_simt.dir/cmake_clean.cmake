file(REMOVE_RECURSE
  "CMakeFiles/bt_simt.dir/algorithms.cpp.o"
  "CMakeFiles/bt_simt.dir/algorithms.cpp.o.d"
  "CMakeFiles/bt_simt.dir/simt.cpp.o"
  "CMakeFiles/bt_simt.dir/simt.cpp.o.d"
  "libbt_simt.a"
  "libbt_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
