# Empty compiler generated dependencies file for bt_simt.
# This may be replaced when dependencies are built.
