# Empty dependencies file for bt_kernels.
# This may be replaced when dependencies are built.
