
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv2d.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/conv2d.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/conv2d.cpp.o.d"
  "/root/repo/src/kernels/csr.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/csr.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/csr.cpp.o.d"
  "/root/repo/src/kernels/gemm_conv.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/gemm_conv.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/gemm_conv.cpp.o.d"
  "/root/repo/src/kernels/image.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/image.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/image.cpp.o.d"
  "/root/repo/src/kernels/linear.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/linear.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/linear.cpp.o.d"
  "/root/repo/src/kernels/morton.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/morton.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/morton.cpp.o.d"
  "/root/repo/src/kernels/octree.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/octree.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/octree.cpp.o.d"
  "/root/repo/src/kernels/octree_query.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/octree_query.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/octree_query.cpp.o.d"
  "/root/repo/src/kernels/pooling.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/pooling.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/pooling.cpp.o.d"
  "/root/repo/src/kernels/prefix_sum.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/prefix_sum.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/prefix_sum.cpp.o.d"
  "/root/repo/src/kernels/radix_tree.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/radix_tree.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/radix_tree.cpp.o.d"
  "/root/repo/src/kernels/sort.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/sort.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/sort.cpp.o.d"
  "/root/repo/src/kernels/sparse_conv.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/sparse_conv.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/sparse_conv.cpp.o.d"
  "/root/repo/src/kernels/unique.cpp" "src/kernels/CMakeFiles/bt_kernels.dir/unique.cpp.o" "gcc" "src/kernels/CMakeFiles/bt_kernels.dir/unique.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bt_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
