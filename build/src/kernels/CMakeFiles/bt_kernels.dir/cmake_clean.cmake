file(REMOVE_RECURSE
  "CMakeFiles/bt_kernels.dir/conv2d.cpp.o"
  "CMakeFiles/bt_kernels.dir/conv2d.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/csr.cpp.o"
  "CMakeFiles/bt_kernels.dir/csr.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/gemm_conv.cpp.o"
  "CMakeFiles/bt_kernels.dir/gemm_conv.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/image.cpp.o"
  "CMakeFiles/bt_kernels.dir/image.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/linear.cpp.o"
  "CMakeFiles/bt_kernels.dir/linear.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/morton.cpp.o"
  "CMakeFiles/bt_kernels.dir/morton.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/octree.cpp.o"
  "CMakeFiles/bt_kernels.dir/octree.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/octree_query.cpp.o"
  "CMakeFiles/bt_kernels.dir/octree_query.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/pooling.cpp.o"
  "CMakeFiles/bt_kernels.dir/pooling.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/prefix_sum.cpp.o"
  "CMakeFiles/bt_kernels.dir/prefix_sum.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/radix_tree.cpp.o"
  "CMakeFiles/bt_kernels.dir/radix_tree.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/sort.cpp.o"
  "CMakeFiles/bt_kernels.dir/sort.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/sparse_conv.cpp.o"
  "CMakeFiles/bt_kernels.dir/sparse_conv.cpp.o.d"
  "CMakeFiles/bt_kernels.dir/unique.cpp.o"
  "CMakeFiles/bt_kernels.dir/unique.cpp.o.d"
  "libbt_kernels.a"
  "libbt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
