file(REMOVE_RECURSE
  "libbt_kernels.a"
)
