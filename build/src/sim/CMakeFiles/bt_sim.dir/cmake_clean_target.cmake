file(REMOVE_RECURSE
  "libbt_sim.a"
)
