file(REMOVE_RECURSE
  "CMakeFiles/bt_sim.dir/engine.cpp.o"
  "CMakeFiles/bt_sim.dir/engine.cpp.o.d"
  "libbt_sim.a"
  "libbt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
