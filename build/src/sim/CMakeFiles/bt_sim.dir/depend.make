# Empty dependencies file for bt_sim.
# This may be replaced when dependencies are built.
