# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_simt[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_dense[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_octree[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_extra[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_image[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
