# Empty compiler generated dependencies file for test_kernels_octree.
# This may be replaced when dependencies are built.
