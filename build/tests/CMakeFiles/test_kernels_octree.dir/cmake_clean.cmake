file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_octree.dir/test_kernels_octree.cpp.o"
  "CMakeFiles/test_kernels_octree.dir/test_kernels_octree.cpp.o.d"
  "test_kernels_octree"
  "test_kernels_octree.pdb"
  "test_kernels_octree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
