file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_image.dir/test_kernels_image.cpp.o"
  "CMakeFiles/test_kernels_image.dir/test_kernels_image.cpp.o.d"
  "test_kernels_image"
  "test_kernels_image.pdb"
  "test_kernels_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
