# Empty dependencies file for test_kernels_image.
# This may be replaced when dependencies are built.
