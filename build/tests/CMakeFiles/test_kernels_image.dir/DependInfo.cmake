
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kernels_image.cpp" "tests/CMakeFiles/test_kernels_image.dir/test_kernels_image.cpp.o" "gcc" "tests/CMakeFiles/test_kernels_image.dir/test_kernels_image.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/bt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/bt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/bt_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/bt_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/bt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
