# Empty compiler generated dependencies file for test_kernels_dense.
# This may be replaced when dependencies are built.
