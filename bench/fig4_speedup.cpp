/**
 * @file
 * Reproduces paper Fig. 4 and the Sec. 5.1 headline numbers: the
 * speedup of the autotuned BetterTogether pipeline over the best
 * homogeneous baseline for every (application, device) pair, plus
 * per-device and overall geometric means and the CPU-only/GPU-only
 * speedups quoted in the abstract.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("BetterTogether speedup over best homogeneous baseline",
                "paper Fig. 4 / Sec. 5.1");

    Table table({"Device", "App", "BT (ms)", "best base (ms)",
                 "speedup", "schedule"});
    CsvWriter csv("fig4_speedup.csv",
                  {"device", "app", "bt_ms", "cpu_ms", "gpu_ms",
                   "speedup", "schedule"});

    std::vector<double> all_speedups;
    std::vector<double> cpu_speedups, gpu_speedups;
    const auto socs = devices();
    double max_speedup = 0.0;

    for (int d = 0; d < kNumDevices; ++d) {
        const auto& soc = socs[static_cast<std::size_t>(d)];
        std::vector<double> device_speedups;
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            const auto report = runFlow(soc, app);

            const double speedup = report.speedupOverBestBaseline();
            device_speedups.push_back(speedup);
            all_speedups.push_back(speedup);
            cpu_speedups.push_back(report.speedupOverCpu());
            gpu_speedups.push_back(report.speedupOverGpu());
            max_speedup = std::max(max_speedup, speedup);

            std::vector<std::string> names;
            for (const auto& s : app.stages())
                names.push_back(s.name());
            table.addRow(
                {soc.name, kAppNames[static_cast<std::size_t>(a)],
                 Table::num(report.bestLatencySeconds * 1e3, 2),
                 Table::num(report.bestBaselineSeconds() * 1e3, 2),
                 Table::num(speedup, 2) + "x",
                 report.bestSchedule.compactString()});
            csv.addRow({soc.name,
                        kAppNames[static_cast<std::size_t>(a)],
                        Table::num(report.bestLatencySeconds * 1e3, 4),
                        Table::num(report.cpuBaselineSeconds * 1e3, 4),
                        Table::num(report.gpuBaselineSeconds * 1e3, 4),
                        Table::num(speedup, 4),
                        report.bestSchedule.compactString()});
        }
        table.addRow({soc.name, "geomean", "", "",
                      Table::num(geomean(device_speedups), 2) + "x ("
                          + "paper "
                          + Table::num(kFig4GeomeanPerDevice[
                                static_cast<std::size_t>(d)], 2)
                          + "x)",
                      ""});
    }
    table.print(std::cout);

    std::printf("\nOverall geomean speedup: %.2fx (paper Fig. 4: "
                "%.2fx, abstract: %.2fx)\n",
                geomean(all_speedups), kFig4OverallGeomean,
                kAbstractGeomean);
    std::printf("Max speedup: %.2fx (paper: %.2fx)\n", max_speedup,
                kMaxSpeedup);
    std::printf("Geomean over CPU-only: %.2fx (paper: 11.23x); over "
                "GPU-only: %.2fx (paper: 2.72x)\n",
                geomean(cpu_speedups), geomean(gpu_speedups));
    return 0;
}
