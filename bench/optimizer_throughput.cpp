/**
 * @file
 * Plan-throughput trajectory suite (BENCH_optimizer.json): how many
 * schedules per second the optimizer can score, what a full
 * profile -> optimize -> tune plan costs end to end, and how fast the
 * graceful-degradation replan path recovers after a PU dropout.
 *
 * Each benchmark runs in two flavours sharing one binary:
 *   *_SeedPath    — the from-scratch baseline (memoization off, serial
 *                   tuning), matching the pre-throughput-layer code;
 *   *_Throughput  — the memoized evaluator + (where it applies) the
 *                   parallel tuning campaign.
 * Comparing the two inside the same snapshot gives the end-to-end plan
 * speedup without cross-revision noise. The predicted_best_latency_ms /
 * replan-assignment counters are semantic anchors: both flavours must
 * report identical values (the memoized path is bit-exact), so any
 * divergence in the JSON is a correctness regression, not noise.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "bench/common/bench_util.hpp"
#include "core/autotuner.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/schedule_eval.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"
#include "runtime/recovery.hpp"

namespace {

using namespace bt;

core::PlannerSpec
exhaustiveConfig(bool memoize)
{
    core::PlannerSpec cfg;
    cfg.engine = core::PlannerEngine::Exhaustive;
    cfg.memoize = memoize;
    return cfg;
}

/**
 * Schedules/second through the exhaustive engine: every enumerable
 * schedule of AlexNet-sparse on the Pixel is scored per iteration.
 */
void
BM_EnumerationThroughput(benchmark::State& state, bool memoize)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const core::Profiler profiler(model);
    const auto profile = profiler.profile(app);

    const auto space = core::enumerateSchedules(app.numStages(),
                                                soc.numPus());

    double best_latency = 0.0;
    for (auto _ : state) {
        core::Optimizer optimizer(soc, profile.interference,
                                  exhaustiveConfig(memoize));
        const auto cands = optimizer.optimize();
        best_latency = cands.front().predictedLatency;
        benchmark::ClobberMemory();
    }
    state.counters["schedule_space"]
        = static_cast<double>(space.size());
    state.counters["predicted_best_latency_ms"] = best_latency * 1e3;
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(space.size()));
}
void
BM_EnumerationThroughput_SeedPath(benchmark::State& state)
{
    BM_EnumerationThroughput(state, false);
}
void
BM_EnumerationThroughput_Throughput(benchmark::State& state)
{
    BM_EnumerationThroughput(state, true);
}
BENCHMARK(BM_EnumerationThroughput_SeedPath);
BENCHMARK(BM_EnumerationThroughput_Throughput);

/**
 * End-to-end plan latency: profile -> optimize (constraint solver,
 * default K = 20) -> autotune all candidates. The acceptance anchor for
 * the throughput-oriented planning layer.
 */
void
BM_PlanEndToEnd(benchmark::State& state, bool memoize, int threads)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();

    core::SimExecConfig exec_cfg;
    exec_cfg.noiseSalt = bench::benchNoiseSalt();
    const core::SimExecutor executor(model, exec_cfg);

    core::PlannerSpec opt_cfg;
    opt_cfg.memoize = memoize;

    double best_measured = 0.0;
    int candidates_tuned = 0;
    for (auto _ : state) {
        const core::Profiler profiler(model);
        const auto profile = profiler.profile(app);
        core::Optimizer optimizer(soc, profile.interference, opt_cfg);
        const auto cands = optimizer.optimize();
        const core::AutoTuner tuner(executor, 10.0, threads);
        const auto report = tuner.tune(app, cands);
        best_measured = report.best().measuredLatency;
        candidates_tuned = static_cast<int>(report.all.size());
        benchmark::ClobberMemory();
    }
    state.counters["candidates_tuned"]
        = static_cast<double>(candidates_tuned);
    state.counters["measured_best_latency_ms"] = best_measured * 1e3;
    state.SetItemsProcessed(state.iterations() * candidates_tuned);
}
void
BM_PlanEndToEnd_SeedPath(benchmark::State& state)
{
    BM_PlanEndToEnd(state, false, 1);
}
void
BM_PlanEndToEnd_Throughput(benchmark::State& state)
{
    const unsigned hw = std::thread::hardware_concurrency();
    BM_PlanEndToEnd(state, true,
                    static_cast<int>(hw == 0 ? 1 : hw));
}
BENCHMARK(BM_PlanEndToEnd_SeedPath)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlanEndToEnd_Throughput)->Unit(benchmark::kMillisecond);

/**
 * Replan latency after a simulated PU dropout: the fault-recovery
 * critical path. SeedPath rebuilds the model table and re-scores the
 * surviving space per replan (the old replanOnSurvivors); Throughput
 * replans through the shared ReplanPlanner cache, whose second and
 * later dropouts hit the warm prediction memo.
 */
void
BM_ReplanAfterDropout(benchmark::State& state, bool cached)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();

    // Two successive dropouts, as a degrading device would see them.
    std::vector<bool> first_loss(
        static_cast<std::size_t>(soc.numPus()), true);
    first_loss[0] = false;
    std::vector<bool> second_loss = first_loss;
    second_loss[1] = false;

    std::string plan_digest;
    for (auto _ : state) {
        if (cached) {
            runtime::ReplanPlanner planner(model, app);
            const auto a = planner.replan(first_loss);
            const auto b = planner.replan(second_loss);
            plan_digest = a.compactString() + "|" + b.compactString();
        } else {
            const auto a
                = runtime::replanOnSurvivors(model, app, first_loss);
            const auto b
                = runtime::replanOnSurvivors(model, app, second_loss);
            plan_digest = a.compactString() + "|" + b.compactString();
        }
        benchmark::ClobberMemory();
    }
    state.SetLabel(plan_digest);
    state.SetItemsProcessed(state.iterations() * 2);
}
void
BM_ReplanAfterDropout_SeedPath(benchmark::State& state)
{
    BM_ReplanAfterDropout(state, false);
}
void
BM_ReplanAfterDropout_Throughput(benchmark::State& state)
{
    BM_ReplanAfterDropout(state, true);
}
BENCHMARK(BM_ReplanAfterDropout_SeedPath)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplanAfterDropout_Throughput)
    ->Unit(benchmark::kMillisecond);

/**
 * Large-instance tier: the annealed engine plans the 14-stage deep
 * pipeline on the 8-class manycore rig - ~1.7e8 schedules over 112
 * assignment variables, far past the exact engines' enumeration limit
 * (they refuse the instance outright; exact_enumerable records the
 * refusal predicate) - under an active C6 budget, inside a fixed move
 * budget. Single flavour: there is no from-scratch exact baseline at
 * this scale, which is the point of the tier.
 */
void
BM_LargeInstanceAnnealed(benchmark::State& state)
{
    const auto soc = platform::manycoreRig();
    const auto table = bench::deepPipelineTable(soc);
    const auto contention = bench::deepPipelineContention(soc, table);

    core::PlannerSpec spec;
    spec.engine = core::PlannerEngine::Annealed;
    spec.contention.budgetGbps = soc.mem.dramBwGbps;
    spec.contentionProfile = &contention;

    double best_latency = 0.0;
    bool c6_feasible = false;
    std::uint64_t space = 0;
    std::int64_t proposed = 0;
    for (auto _ : state) {
        core::Optimizer optimizer(soc, table, spec);
        const auto cands = optimizer.optimize();
        best_latency = cands.front().predictedLatency;
        c6_feasible = cands.front().predictedDemandGbps
            <= spec.contention.budgetGbps + 1e-9;
        space = optimizer.stats().spaceSize;
        proposed = optimizer.stats().annealProposed;
        benchmark::ClobberMemory();
    }
    state.counters["assignment_variables"] = static_cast<double>(
        table.numStages() * soc.numPus());
    state.counters["schedule_space"] = static_cast<double>(space);
    state.counters["exact_enumerable"]
        = space <= spec.exactSpaceLimit ? 1.0 : 0.0;
    state.counters["moves_proposed"] = static_cast<double>(proposed);
    state.counters["annealed_best_latency_ms"] = best_latency * 1e3;
    state.counters["c6_feasible"] = c6_feasible ? 1.0 : 0.0;
    state.SetItemsProcessed(state.iterations() * proposed);
}
BENCHMARK(BM_LargeInstanceAnnealed)->Unit(benchmark::kMillisecond);

} // namespace
