/**
 * @file
 * Reproduces paper Fig. 7: the average ratio of interference-heavy to
 * isolated execution time per PU class on each device, averaged over
 * all three applications. Ratios above 1 mean contention slows the PU;
 * below 1 mean the firmware boosts it under load (the surprising
 * mobile-GPU behaviour of Sec. 5.3).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/profiler.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Interference-heavy / isolated time ratio per PU",
                "paper Fig. 7; <1 = speedup under load, >1 = slowdown");

    Table table({"Device", "PU", "measured ratio", "paper ratio"});
    CsvWriter csv("fig7_interference.csv",
                  {"device", "pu", "ratio", "paper_ratio"});

    const auto socs = devices();
    for (int d = 0; d < kNumDevices; ++d) {
        const auto& soc = socs[static_cast<std::size_t>(d)];
        const platform::PerfModel model(soc);
        const core::Profiler profiler(model);

        // Profile all three applications once on this device.
        std::vector<core::ProfileResult> results;
        for (int a = 0; a < kNumApps; ++a)
            results.push_back(profiler.profile(paperApp(a)));

        for (int p = 0; p < soc.numPus(); ++p) {
            // Average the ratio over every stage of every application.
            std::vector<double> ratios;
            for (const auto& result : results) {
                for (int s = 0; s < result.isolated.numStages(); ++s)
                    ratios.push_back(result.interference.at(s, p)
                                     / result.isolated.at(s, p));
            }
            const double measured = mean(ratios);
            const double paper
                = kFig7Ratios[static_cast<std::size_t>(d)]
                             [static_cast<std::size_t>(p)];
            table.addRow({soc.name, soc.pu(p).label,
                          Table::num(measured, 3),
                          paper > 0 ? Table::num(paper, 3) : "-"});
            csv.addRow({soc.name, soc.pu(p).label,
                        Table::num(measured, 4),
                        Table::num(paper, 3)});
        }
    }
    table.print(std::cout);
    std::printf("\nShape check: sign of the effect (boost vs slowdown) "
                "should match the paper per PU.\n");
    return 0;
}
