/**
 * @file
 * Google-benchmark microbenchmarks of the compute kernels (the paper's
 * harness is "built on top of Google Benchmark", Sec. 4). These measure
 * the host's functional execution speed - useful for regression
 * tracking of the kernel implementations themselves; simulated-device
 * timing is covered by the table/figure benches.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/morton.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/radix_tree.hpp"
#include "kernels/sort.hpp"
#include "kernels/sparse_conv.hpp"
#include "kernels/unique.hpp"

namespace {

using namespace bt;
using namespace bt::kernels;

std::vector<float>
randomFloats(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.nextRange(-1.0, 1.0));
    return v;
}

std::vector<std::uint32_t>
randomKeys(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto& x : v)
        x = static_cast<std::uint32_t>(rng.nextU64()) & 0x3FFFFFFFu;
    return v;
}

void
BM_Conv2dDense(benchmark::State& state)
{
    const int c = static_cast<int>(state.range(0));
    const ConvShape shape{Shape3{c, 16, 16}, c * 2};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 1);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 2);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                3);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        conv2dCpu(CpuExec{nullptr}, shape, in, w, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
}
BENCHMARK(BM_Conv2dDense)->Arg(8)->Arg(32);

void
BM_SparseConv(benchmark::State& state)
{
    const ConvShape shape{Shape3{32, 16, 16}, 64};
    const auto dense = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 4);
    const CsrMatrix csr = pruneToCsr(
        dense, shape.outC, shape.in.c * 9,
        static_cast<double>(state.range(0)) / 100.0);
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 5);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                6);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        sparseConvCpu(CpuExec{nullptr}, shape, in, csr, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_SparseConv)->Arg(1)->Arg(10)->Arg(100);

void
BM_MortonEncode(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    const auto pts = randomFloats(static_cast<std::size_t>(3 * n), 7);
    std::vector<std::uint32_t> codes(static_cast<std::size_t>(n));
    for (auto _ : state) {
        mortonEncodeCpu(CpuExec{nullptr}, pts, codes, n);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MortonEncode)->Arg(1 << 14)->Arg(1 << 17);

void
BM_RadixSortCpu(benchmark::State& state)
{
    const auto keys = randomKeys(static_cast<std::size_t>(
        state.range(0)), 8);
    std::vector<std::uint32_t> work(keys.size());
    std::vector<std::uint32_t> scratch(keys.size());
    for (auto _ : state) {
        work = keys;
        radixSortCpu(CpuExec{nullptr}, work, scratch);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_RadixSortCpu)->Arg(1 << 14)->Arg(1 << 17);

void
BM_RadixSortGpuBackend(benchmark::State& state)
{
    const auto keys = randomKeys(static_cast<std::size_t>(
        state.range(0)), 9);
    std::vector<std::uint32_t> work(keys.size());
    std::vector<std::uint32_t> scratch(keys.size());
    for (auto _ : state) {
        work = keys;
        radixSortGpu(work, scratch);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_RadixSortGpuBackend)->Arg(1 << 14)->Arg(1 << 17);

void
BM_RadixTreeBuild(benchmark::State& state)
{
    auto codes = randomKeys(static_cast<std::size_t>(state.range(0)),
                            10);
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    const auto k = static_cast<std::int64_t>(codes.size());
    std::vector<std::int32_t> left(codes.size()), right(codes.size()),
        parent(codes.size()), leaf_parent(codes.size()),
        prefix_len(codes.size()), first(codes.size()),
        last(codes.size());
    const RadixTreeView view{left, right, parent, leaf_parent,
                             prefix_len, first, last};
    for (auto _ : state) {
        buildRadixTreeCpu(CpuExec{nullptr}, codes, k, view);
        benchmark::DoNotOptimize(left.data());
    }
    state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_RadixTreeBuild)->Arg(1 << 14)->Arg(1 << 16);

void
BM_ExclusiveScan(benchmark::State& state)
{
    Rng rng(11);
    std::vector<std::uint32_t> in(static_cast<std::size_t>(
        state.range(0)));
    for (auto& x : in)
        x = static_cast<std::uint32_t>(rng.nextBounded(8));
    std::vector<std::uint32_t> out(in.size());
    for (auto _ : state) {
        exclusiveScanCpu(CpuExec{nullptr}, in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 16)->Arg(1 << 18);

} // namespace
