/**
 * @file
 * Google-benchmark microbenchmarks of the compute kernels (the paper's
 * harness is "built on top of Google Benchmark", Sec. 4). These measure
 * the host's functional execution speed - useful for regression
 * tracking of the kernel implementations themselves; simulated-device
 * timing is covered by the table/figure benches.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/gemm_conv.hpp"
#include "kernels/image.hpp"
#include "kernels/morton.hpp"
#include "kernels/pooling.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/radix_tree.hpp"
#include "kernels/simd_ops.hpp"
#include "kernels/sort.hpp"
#include "kernels/sparse_conv.hpp"
#include "kernels/unique.hpp"

namespace {

using namespace bt;
using namespace bt::kernels;

std::vector<float>
randomFloats(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.nextRange(-1.0, 1.0));
    return v;
}

std::vector<std::uint32_t>
randomKeys(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto& x : v)
        x = static_cast<std::uint32_t>(rng.nextU64()) & 0x3FFFFFFFu;
    return v;
}

void
BM_Conv2dDense(benchmark::State& state)
{
    const int c = static_cast<int>(state.range(0));
    const ConvShape shape{Shape3{c, 16, 16}, c * 2};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 1);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 2);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                3);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        conv2dCpu(CpuExec{nullptr}, shape, in, w, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
}
BENCHMARK(BM_Conv2dDense)->Arg(8)->Arg(32);

void
BM_SparseConv(benchmark::State& state)
{
    const ConvShape shape{Shape3{32, 16, 16}, 64};
    const auto dense = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 4);
    const CsrMatrix csr = pruneToCsr(
        dense, shape.outC, shape.in.c * 9,
        static_cast<double>(state.range(0)) / 100.0);
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 5);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                6);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        sparseConvCpu(CpuExec{nullptr}, shape, in, csr, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_SparseConv)->Arg(1)->Arg(10)->Arg(100);

void
BM_MortonEncode(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    const auto pts = randomFloats(static_cast<std::size_t>(3 * n), 7);
    std::vector<std::uint32_t> codes(static_cast<std::size_t>(n));
    for (auto _ : state) {
        mortonEncodeCpu(CpuExec{nullptr}, pts, codes, n);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MortonEncode)->Arg(1 << 14)->Arg(1 << 17);

void
BM_RadixSortCpu(benchmark::State& state)
{
    const auto keys = randomKeys(static_cast<std::size_t>(
        state.range(0)), 8);
    std::vector<std::uint32_t> work(keys.size());
    std::vector<std::uint32_t> scratch(keys.size());
    for (auto _ : state) {
        work = keys;
        radixSortCpu(CpuExec{nullptr}, work, scratch);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_RadixSortCpu)->Arg(1 << 14)->Arg(1 << 17);

void
BM_RadixSortGpuBackend(benchmark::State& state)
{
    const auto keys = randomKeys(static_cast<std::size_t>(
        state.range(0)), 9);
    std::vector<std::uint32_t> work(keys.size());
    std::vector<std::uint32_t> scratch(keys.size());
    for (auto _ : state) {
        work = keys;
        radixSortGpu(work, scratch);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_RadixSortGpuBackend)->Arg(1 << 14)->Arg(1 << 17);

void
BM_RadixTreeBuild(benchmark::State& state)
{
    auto codes = randomKeys(static_cast<std::size_t>(state.range(0)),
                            10);
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    const auto k = static_cast<std::int64_t>(codes.size());
    std::vector<std::int32_t> left(codes.size()), right(codes.size()),
        parent(codes.size()), leaf_parent(codes.size()),
        prefix_len(codes.size()), first(codes.size()),
        last(codes.size());
    const RadixTreeView view{left, right, parent, leaf_parent,
                             prefix_len, first, last};
    for (auto _ : state) {
        buildRadixTreeCpu(CpuExec{nullptr}, codes, k, view);
        benchmark::DoNotOptimize(left.data());
    }
    state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_RadixTreeBuild)->Arg(1 << 14)->Arg(1 << 16);

void
BM_ExclusiveScan(benchmark::State& state)
{
    Rng rng(11);
    std::vector<std::uint32_t> in(static_cast<std::size_t>(
        state.range(0)));
    for (auto& x : in)
        x = static_cast<std::uint32_t>(rng.nextBounded(8));
    std::vector<std::uint32_t> out(in.size());
    for (auto _ : state) {
        exclusiveScanCpu(CpuExec{nullptr}, in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 16)->Arg(1 << 18);

// ---------------------------------------------------------------------
// Dispatch-tier benchmarks: the same device kernel launched through the
// statically-templated SIMT tier (the default) and through the
// type-erased simt::Kernel tier (one indirect call per SIMT thread; this
// is the cost profile every launch paid before the templated tier
// existed, so Erased vs Templated is the dispatch overhead itself).
// Geometry covers one element per thread, as a real GPU launch would.
// ---------------------------------------------------------------------

GpuExec
dispatchExec(bool erased)
{
    GpuExec exec;
    exec.maxGrid = 1 << 20; // one element per thread, like a GPU launch
    exec.erased = erased;
    return exec;
}

void
BM_MortonGpuDispatch(benchmark::State& state, bool erased)
{
    const std::int64_t n = 1 << 16;
    const auto pts = randomFloats(static_cast<std::size_t>(3 * n), 21);
    std::vector<std::uint32_t> codes(static_cast<std::size_t>(n));
    const GpuExec exec = dispatchExec(erased);
    for (auto _ : state) {
        mortonEncodeGpu(exec, pts, codes, n);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_MortonGpuDispatch, Templated, false);
BENCHMARK_CAPTURE(BM_MortonGpuDispatch, Erased, true);

void
BM_MaxpoolGpuDispatch(benchmark::State& state, bool erased)
{
    const Shape3 shape{32, 64, 64};
    const auto in = randomFloats(static_cast<std::size_t>(shape.elems()),
                                 22);
    std::vector<float> out(static_cast<std::size_t>(
        pooledShape(shape).elems()));
    const GpuExec exec = dispatchExec(erased);
    for (auto _ : state) {
        maxpoolGpu(exec, shape, in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * pooledShape(shape).elems());
}
BENCHMARK_CAPTURE(BM_MaxpoolGpuDispatch, Templated, false);
BENCHMARK_CAPTURE(BM_MaxpoolGpuDispatch, Erased, true);

void
BM_BlurHGpuDispatch(benchmark::State& state, bool erased)
{
    const ImageShape shape{512, 512};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.pixels()), 23);
    std::vector<float> out(static_cast<std::size_t>(shape.pixels()));
    const GpuExec exec = dispatchExec(erased);
    for (auto _ : state) {
        blurHGpu(exec, shape, in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.pixels());
}
BENCHMARK_CAPTURE(BM_BlurHGpuDispatch, Templated, false);
BENCHMARK_CAPTURE(BM_BlurHGpuDispatch, Erased, true);

void
BM_NmsGpuDispatch(benchmark::State& state, bool erased)
{
    const ImageShape shape{512, 512};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.pixels()), 24);
    std::vector<std::uint32_t> flags(static_cast<std::size_t>(
        shape.pixels()));
    const GpuExec exec = dispatchExec(erased);
    for (auto _ : state) {
        nmsGpu(exec, shape, in, 0.5f, flags);
        benchmark::DoNotOptimize(flags.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.pixels());
}
BENCHMARK_CAPTURE(BM_NmsGpuDispatch, Templated, false);
BENCHMARK_CAPTURE(BM_NmsGpuDispatch, Erased, true);

void
BM_Conv2dGpuDispatch(benchmark::State& state, bool erased)
{
    const ConvShape shape{Shape3{8, 32, 32}, 16};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 25);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 26);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                27);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    const GpuExec exec = dispatchExec(erased);
    for (auto _ : state) {
        conv2dGpu(exec, shape, in, w, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
}
BENCHMARK_CAPTURE(BM_Conv2dGpuDispatch, Templated, false);
BENCHMARK_CAPTURE(BM_Conv2dGpuDispatch, Erased, true);

void
BM_ScanGpuDispatch(benchmark::State& state, bool erased)
{
    // Compaction-style flag scatter over the scan output: the map side
    // of prefix-sum pipelines (the scan itself is chunk-cooperative and
    // pays dispatch once per chunk, not per element).
    const std::int64_t n = 1 << 17;
    Rng rng(28);
    std::vector<std::uint32_t> flags(static_cast<std::size_t>(n));
    for (auto& f : flags)
        f = static_cast<std::uint32_t>(rng.nextBounded(2));
    std::vector<std::uint32_t> offsets(flags.size());
    std::vector<std::uint32_t> compacted(flags.size());
    const GpuExec exec = dispatchExec(erased);
    for (auto _ : state) {
        exclusiveScanGpu(flags, offsets);
        exec.forEach(n, [&](std::int64_t i) {
            if (flags[static_cast<std::size_t>(i)])
                compacted[offsets[static_cast<std::size_t>(i)]]
                    = static_cast<std::uint32_t>(i);
        });
        benchmark::DoNotOptimize(compacted.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_ScanGpuDispatch, Templated, false);
BENCHMARK_CAPTURE(BM_ScanGpuDispatch, Erased, true);

// ---------------------------------------------------------------------
// Host-body trajectory benchmarks: the tuned host kernels against the
// single-threaded references. Each reference is the per-element body the
// seed's host path ran (flat index + divisions per element), unchanged
// since the seed, so Tuned vs SeedPath is the host-kernel speedup of
// this tree over the seed tree on the same machine.
// ---------------------------------------------------------------------

void
BM_Conv2dHostBody(benchmark::State& state, bool tuned)
{
    const ConvShape shape{Shape3{16, 32, 32}, 32};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 32);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 33);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                34);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        if (tuned)
            conv2dCpu(CpuExec{nullptr}, shape, in, w, b, out);
        else
            conv2dReference(shape, in, w, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
}
BENCHMARK_CAPTURE(BM_Conv2dHostBody, Tuned, true);
BENCHMARK_CAPTURE(BM_Conv2dHostBody, SeedPath, false);

void
BM_SparseConvHostBody(benchmark::State& state, bool tuned)
{
    const ConvShape shape{Shape3{32, 16, 16}, 64};
    const auto dense = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 35);
    const CsrMatrix csr = pruneToCsr(dense, shape.outC, shape.in.c * 9,
                                     0.10);
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 36);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                37);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        if (tuned)
            sparseConvCpu(CpuExec{nullptr}, shape, in, csr, b, out);
        else
            sparseConvReference(shape, in, csr, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
}
BENCHMARK_CAPTURE(BM_SparseConvHostBody, Tuned, true);
BENCHMARK_CAPTURE(BM_SparseConvHostBody, SeedPath, false);

void
BM_MaxpoolHostBody(benchmark::State& state, bool tuned)
{
    const Shape3 shape{32, 64, 64};
    const auto in = randomFloats(static_cast<std::size_t>(shape.elems()),
                                 38);
    std::vector<float> out(static_cast<std::size_t>(
        pooledShape(shape).elems()));
    for (auto _ : state) {
        if (tuned)
            maxpoolCpu(CpuExec{nullptr}, shape, in, out);
        else
            maxpoolReference(shape, in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * pooledShape(shape).elems());
}
BENCHMARK_CAPTURE(BM_MaxpoolHostBody, Tuned, true);
BENCHMARK_CAPTURE(BM_MaxpoolHostBody, SeedPath, false);

void
BM_GemmConv(benchmark::State& state)
{
    const int c = static_cast<int>(state.range(0));
    const ConvShape shape{Shape3{c, 16, 16}, c * 2};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 29);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 30);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                31);
    const std::int64_t pixels
        = static_cast<std::int64_t>(shape.in.h) * shape.in.w;
    std::vector<float> cols(static_cast<std::size_t>(shape.in.c) * 9
                            * static_cast<std::size_t>(pixels));
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        conv2dGemmCpu(CpuExec{nullptr}, shape, in, w, b, cols, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
}
BENCHMARK(BM_GemmConv)->Arg(8)->Arg(32);

// SIMD-vs-scalar tier pairs: same shape and data, dispatch pinned to
// the widest available tier vs the scalar fallback. The Simd/Scalar
// ratio inside one snapshot prices the vector layer without the
// cross-host noise of comparing two BENCH_kernels.json files; the CI
// bench smoke asserts the expected margins (skipped when the host's
// best tier is already scalar).

/** Pin @p simd ? widest built+supported tier : scalar for the loop. */
class ScopedBenchTier
{
  public:
    explicit ScopedBenchTier(bool simd)
    {
        bt::simd::Isa isa = simd ? bt::simd::bestCpuIsa()
                                 : bt::simd::Isa::Scalar;
        // The CPU may support a tier the build left out
        // (-DBT_ENABLE_AVX2=OFF): clamp like the runtime dispatcher.
        while (!simdTierAvailable(isa))
            isa = bt::simd::fallbackIsa(isa);
        setSimdIsaForTesting(isa);
    }
    ~ScopedBenchTier() { resetSimdIsaForTesting(); }
    ScopedBenchTier(const ScopedBenchTier&) = delete;
    ScopedBenchTier& operator=(const ScopedBenchTier&) = delete;
};

void
BM_GemmSimdTier(benchmark::State& state, bool simd)
{
    const ScopedBenchTier tier(simd);
    const int m = 64;
    const int n = 256;
    const int k = 288;
    const auto a = randomFloats(static_cast<std::size_t>(m) * k, 32);
    const auto b = randomFloats(static_cast<std::size_t>(k) * n, 33);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    for (auto _ : state) {
        gemmCpu(CpuExec{nullptr}, m, n, k, a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2
                            * static_cast<std::int64_t>(m) * n * k);
    state.SetLabel(bt::simd::isaName(simdTier().isa));
}
BENCHMARK_CAPTURE(BM_GemmSimdTier, Simd, true);
BENCHMARK_CAPTURE(BM_GemmSimdTier, Scalar, false);

void
BM_Conv2dSimdTier(benchmark::State& state, bool simd)
{
    const ScopedBenchTier tier(simd);
    const ConvShape shape{Shape3{32, 16, 16}, 64};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 34);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 35);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                36);
    std::vector<float> out(static_cast<std::size_t>(
        shape.out().elems()));
    for (auto _ : state) {
        conv2dCpu(CpuExec{nullptr}, shape, in, w, b, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * shape.out().elems());
    state.SetLabel(bt::simd::isaName(simdTier().isa));
}
BENCHMARK_CAPTURE(BM_Conv2dSimdTier, Simd, true);
BENCHMARK_CAPTURE(BM_Conv2dSimdTier, Scalar, false);

} // namespace
