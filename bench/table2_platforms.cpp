/**
 * @file
 * Reproduces paper Table 2: hardware specifications of the evaluated
 * platforms, generated from the simulated device catalog (including
 * the affinity map each PU class exposes).
 */

#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/table.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Hardware specifications of tested edge platforms",
                "paper Table 2");

    Table table({"Device", "PU", "Hardware", "Cores", "Clock (GHz)",
                 "Affinity", "API"});
    for (const auto& soc : devices()) {
        for (const auto& pu : soc.pus) {
            table.addRow({soc.name, pu.label, pu.hardware,
                          std::to_string(pu.cores),
                          Table::num(pu.freqGhz, 2),
                          pu.coreIds.empty() ? "-"
                                             : pu.coreIds.toString(),
                          pu.kind == platform::PuKind::Gpu ? soc.gpuApi
                                                           : "-"});
        }
    }
    table.print(std::cout);
    return 0;
}
