/**
 * @file
 * Reproduces paper Fig. 6: the Pearson correlation between predicted
 * and measured latency of the top-20 schedules, for every application
 * on every device, under (a) the full BetterTogether methodology and
 * (b) the prior-work baseline (isolated profiling table, latency-only
 * optimization).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

namespace {

double
correlationFor(const platform::SocDescription& soc,
               const core::Application& app,
               const core::ProfileResult& profile, bool bt_mode)
{
    const platform::PerfModel model(soc);
    core::PlannerSpec cfg;
    cfg.utilizationFilter = bt_mode;
    const auto& tbl
        = bt_mode ? profile.interference : profile.isolated;
    core::Optimizer opt(soc, tbl, cfg);
    const auto cands = opt.optimize();

    const core::SimExecutor executor(model);
    std::vector<double> predicted, measured;
    for (const auto& c : cands) {
        predicted.push_back(c.predictedLatency);
        measured.push_back(
            executor.execute(app, c.schedule).taskIntervalSeconds);
    }
    return pearson(predicted, measured);
}

} // namespace

int
main()
{
    printHeader("Correlation predicted vs measured (top-20 schedules)",
                "paper Fig. 6a (BetterTogether) and Fig. 6b (isolated)");

    CsvWriter csv("fig6_correlation.csv",
                  {"mode", "app", "device", "correlation",
                   "paper_correlation"});

    const auto socs = devices();
    for (const bool bt_mode : {true, false}) {
        std::vector<std::string> headers{"App \\ Device"};
        for (const auto& soc : socs)
            headers.push_back(soc.name);
        headers.push_back("row avg");
        Table table(headers);

        std::vector<double> all;
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            std::vector<std::string> row{
                kAppNames[static_cast<std::size_t>(a)]};
            std::vector<double> row_vals;
            for (int d = 0; d < kNumDevices; ++d) {
                const auto& soc = socs[static_cast<std::size_t>(d)];
                const platform::PerfModel model(soc);
                const core::Profiler profiler(model);
                const auto profile = profiler.profile(app);
                const double r
                    = correlationFor(soc, app, profile, bt_mode);
                row_vals.push_back(r);
                all.push_back(r);
                const double paper = bt_mode
                    ? kFig6aBetterTogether[static_cast<std::size_t>(a)]
                                          [static_cast<std::size_t>(d)]
                    : kFig6bIsolated[static_cast<std::size_t>(a)]
                                    [static_cast<std::size_t>(d)];
                row.push_back(Table::num(r, 3) + " (" +
                              Table::num(paper, 3) + ")");
                csv.addRow({bt_mode ? "BetterTogether" : "isolated",
                            kAppNames[static_cast<std::size_t>(a)],
                            soc.name, Table::num(r, 4),
                            Table::num(paper, 4)});
            }
            row.push_back(Table::num(mean(row_vals), 3));
            table.addRow(std::move(row));
        }

        std::printf("--- %s (measured, paper in parentheses) ---\n",
                    bt_mode ? "Fig. 6a: BetterTogether"
                            : "Fig. 6b: isolated + latency-only");
        table.print(std::cout);
        std::printf("Mean correlation: %.3f (paper overall %s)\n\n",
                    mean(all),
                    bt_mode ? "0.92 avg, Fig. 6a" : "0.85 avg, Fig. 6b");
    }

    std::printf("Shape check: BetterTogether column means should "
                "dominate the isolated ones, with the largest gaps on "
                "sparse/tree workloads.\n");
    return 0;
}
