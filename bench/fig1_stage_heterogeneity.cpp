/**
 * @file
 * Reproduces paper Fig. 1: per-stage execution time of three Octree
 * stages (Sort, Build Radix Tree, Build Octree) on every PU class of
 * the Google Pixel, illustrating why stage-to-PU mapping matters. The
 * paper's qualitative shape: the GPU loses badly on Sort, wins on
 * Build Radix Tree, and ties the big/mid CPUs on Build Octree.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/profiler.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Octree stage time per PU on the Google Pixel (ms)",
                "paper Fig. 1");

    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const core::Profiler profiler(model);
    const auto app = paperApp(2); // Octree
    const auto result = profiler.profile(app);

    std::vector<std::string> headers{"Stage"};
    for (const auto& pu : soc.pus)
        headers.push_back(pu.label + " (ms)");
    Table table(headers);
    CsvWriter csv("fig1_stage_heterogeneity.csv",
                  {"stage", "pu", "isolated_ms"});

    for (int s = 0; s < app.numStages(); ++s) {
        const std::string& name = app.stage(s).name();
        // Fig. 1 shows Sort, Build Radix Tree and Build Octree.
        if (name != "sort" && name != "radix_tree"
            && name != "build_octree")
            continue;
        std::vector<std::string> row{name};
        for (int p = 0; p < soc.numPus(); ++p) {
            row.push_back(Table::num(result.isolated.at(s, p) * 1e3,
                                     3));
            csv.addRow({name, soc.pu(p).label,
                        Table::num(result.isolated.at(s, p) * 1e3, 4)});
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::printf("\nShape check (paper): GPU slowest on sort; GPU "
                "fastest on radix_tree; big/mid close to GPU on "
                "build_octree.\n");

    std::printf("\nFull profiling table (isolated, ms):\n");
    result.isolated.print(std::cout);
    return 0;
}
