/**
 * @file
 * Energy analysis of pipeline schedules (extension beyond the paper's
 * latency-only evaluation; the paper motivates edge processing with
 * reduced energy, Sec. 1). For each (device, application) pair, the
 * autotuned BetterTogether schedule is compared against the
 * homogeneous baselines on energy per task, average power, and
 * energy-delay product. Device power envelopes follow the paper's
 * figures (Jetson 25 W vs 7 W low-power mode).
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Energy per task / average power of schedules",
                "extension: energy-aware view of the Fig. 4 results");

    std::printf("Device power envelopes (peak W): ");
    for (const auto& soc : devices())
        std::printf("%s=%.1f  ", soc.name.c_str(), soc.peakPowerW());
    std::printf("\n(paper: Jetson 25 W, low-power mode 7 W)\n\n");

    Table table({"Device", "App", "sched", "ms/task", "mJ/task",
                 "avg W", "EDP (mJ*ms)"});
    CsvWriter csv("energy_schedules.csv",
                  {"device", "app", "variant", "ms_per_task",
                   "mj_per_task", "avg_w"});

    std::vector<double> bt_vs_gpu_energy;
    for (const auto& soc : devices()) {
        const core::BetterTogether bt_flow(soc);
        const core::SimExecutor executor(bt_flow.model());
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            const auto report = bt_flow.run(app);

            struct Variant
            {
                const char* name;
                core::Schedule schedule;
            };
            const Variant variants[] = {
                {"BT", report.bestSchedule},
                {"CPU", core::Schedule::homogeneous(
                            app.numStages(), report.cpuBaselinePu)},
                {"GPU", core::Schedule::homogeneous(
                            app.numStages(), report.gpuBaselinePu)},
            };

            double gpu_energy = 0.0, bt_energy = 0.0;
            for (const auto& v : variants) {
                const auto run = executor.execute(app, v.schedule);
                const double ms = run.taskIntervalSeconds * 1e3;
                const double mj = run.energyPerTaskJ() * 1e3;
                if (std::string(v.name) == "GPU")
                    gpu_energy = mj;
                if (std::string(v.name) == "BT")
                    bt_energy = mj;
                table.addRow({soc.name,
                              kAppNames[static_cast<std::size_t>(a)],
                              v.name, Table::num(ms, 2),
                              Table::num(mj, 2),
                              Table::num(run.averagePowerW(), 2),
                              Table::num(mj * ms, 1)});
                csv.addRow({soc.name,
                            kAppNames[static_cast<std::size_t>(a)],
                            v.name, Table::num(ms, 4),
                            Table::num(mj, 4),
                            Table::num(run.averagePowerW(), 3)});
            }
            bt_vs_gpu_energy.push_back(gpu_energy / bt_energy);
        }
    }
    table.print(std::cout);
    std::printf("\nGeomean energy-per-task improvement of BT over "
                "GPU-only: %.2fx\n",
                geomean(bt_vs_gpu_energy));
    std::printf("Note: pipelining keeps more PUs powered, so energy "
                "can regress even when latency improves - the "
                "latency/energy trade-off is schedule dependent.\n");
    return 0;
}
