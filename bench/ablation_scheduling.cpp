/**
 * @file
 * Scheduling-strategy comparison (extension; paper Secs. 1 and 6):
 * BetterTogether's static pipelines vs the two alternatives the paper
 * argues against -
 *   - *dynamic greedy*: StarPU-style runtime dispatch of every
 *     (task, stage) to the best idle PU, at three different runtime
 *     overhead levels;
 *   - *data-parallel*: every stage split across all PUs with a barrier
 *     (predicted; the paper's Sec. 1 motivating example).
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/data_parallel.hpp"
#include "core/dynamic_executor.hpp"
#include "core/pipeline.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Static pipelining vs dynamic greedy vs data-parallel",
                "extension of paper Secs. 1 & 6; ms per task, lower is "
                "better");

    Table table({"Device", "App", "BT static", "dyn 0us", "dyn 50us",
                 "dyn 200us", "data-parallel"});
    CsvWriter csv("ablation_scheduling.csv",
                  {"device", "app", "variant", "ms_per_task"});

    std::vector<double> bt_vs_dyn;
    for (const auto& soc : devices()) {
        const core::BetterTogether bt_flow(soc);
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            const auto report = bt_flow.run(app);
            const double bt_ms = report.bestLatencySeconds * 1e3;

            std::vector<std::string> row{
                soc.name, kAppNames[static_cast<std::size_t>(a)],
                Table::num(bt_ms, 2)};
            csv.addRow({soc.name,
                        kAppNames[static_cast<std::size_t>(a)],
                        "bt_static", Table::num(bt_ms, 4)});

            for (const double overhead_us : {0.0, 50.0, 200.0}) {
                core::DynamicExecConfig cfg;
                cfg.dispatchOverheadUs = overhead_us;
                const core::DynamicExecutor dyn(
                    bt_flow.model(), report.profile.interference, cfg);
                const double ms
                    = dyn.execute(app).taskIntervalSeconds * 1e3;
                row.push_back(Table::num(ms, 2));
                csv.addRow({soc.name,
                            kAppNames[static_cast<std::size_t>(a)],
                            "dynamic_"
                                + Table::num(overhead_us, 0) + "us",
                            Table::num(ms, 4)});
                if (overhead_us == 50.0)
                    bt_vs_dyn.push_back(ms / bt_ms);
            }

            const double dp_ms = core::dataParallelLatency(
                                     app, report.profile.interference)
                * 1e3;
            row.push_back(Table::num(dp_ms, 2));
            csv.addRow({soc.name,
                        kAppNames[static_cast<std::size_t>(a)],
                        "data_parallel", Table::num(dp_ms, 4)});
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::printf("\nGeomean advantage of static BT over dynamic greedy "
                "(50us dispatch): %.2fx\n",
                geomean(bt_vs_dyn));
    std::printf("Shape check: dynamic degrades with dispatch overhead; "
                "data-parallel loses wherever a PU executes a stage it "
                "is ill-suited for (paper Sec. 1).\n");
    return 0;
}
