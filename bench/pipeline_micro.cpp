/**
 * @file
 * Google-benchmark coverage of the unified pipeline runtime: wall-clock
 * cost of a full virtual-time pipeline execution (the inner loop of
 * autotuning campaigns and every paper experiment), the greedy dynamic
 * baseline, and the marginal cost of trace recording.
 *
 * Each benchmark also exports the *virtual* makespan it measured as a
 * counter, so the JSON snapshot (BENCH_pipeline.json) doubles as a
 * semantic regression check: refactors of the runtime must not move
 * these makespans (same schedules, same seeds).
 */

#include <benchmark/benchmark.h>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "bench/common/bench_util.hpp"
#include "core/dynamic_executor.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"

namespace {

using namespace bt;

struct Scenario
{
    const char* name;
    platform::SocDescription (*soc)();
    core::Application (*app)();
    std::vector<int> assignment;
};

/* Fixed representative (device, app, schedule) triples; the schedules
 * are optimizer-shaped splits, pinned here so the measured makespan is
 * comparable across revisions. */
const Scenario kScenarios[] = {
    {"pixel_dense", platform::pixel7a,
     [] { return apps::alexnetDense(); },
     {0, 0, 0, 0, 1, 1, 1, 1, 1}},
    {"pixel_octree", platform::pixel7a,
     [] { return apps::octreeApp(); },
     {0, 1, 1, 3, 3, 3, 2}},
    {"jetson_octree", platform::jetsonOrinNano,
     [] { return apps::octreeApp(); },
     {0, 0, 0, 1, 1, 1, 1}},
};

void
BM_VirtualPipeline(benchmark::State& state)
{
    const auto& sc = kScenarios[state.range(0)];
    const auto soc = sc.soc();
    const platform::PerfModel model(soc);
    const auto app = sc.app();
    const auto schedule = core::Schedule::fromAssignment(sc.assignment);

    core::SimExecConfig cfg;
    cfg.noiseSalt = bench::benchNoiseSalt();
    const core::SimExecutor executor(model, cfg);

    double makespan = 0.0;
    for (auto _ : state) {
        const auto run = executor.execute(app, schedule);
        makespan = run.makespanSeconds;
        benchmark::ClobberMemory();
    }
    state.SetLabel(sc.name);
    state.counters["virtual_makespan_ms"] = makespan * 1e3;
    state.SetItemsProcessed(state.iterations() * cfg.numTasks);
}
BENCHMARK(BM_VirtualPipeline)->DenseRange(0, 2);

void
BM_VirtualPipelineNoTrace(benchmark::State& state)
{
    const auto& sc = kScenarios[state.range(0)];
    const auto soc = sc.soc();
    const platform::PerfModel model(soc);
    const auto app = sc.app();
    const auto schedule = core::Schedule::fromAssignment(sc.assignment);

    core::SimExecConfig cfg;
    cfg.noiseSalt = bench::benchNoiseSalt();
    cfg.recordTrace = false;
    const core::SimExecutor executor(model, cfg);

    double makespan = 0.0;
    for (auto _ : state) {
        const auto run = executor.execute(app, schedule);
        makespan = run.makespanSeconds;
        benchmark::ClobberMemory();
    }
    state.SetLabel(sc.name);
    state.counters["virtual_makespan_ms"] = makespan * 1e3;
    state.SetItemsProcessed(state.iterations() * cfg.numTasks);
}
BENCHMARK(BM_VirtualPipelineNoTrace)->DenseRange(0, 2);

void
BM_GreedyDynamic(benchmark::State& state)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const core::Profiler profiler(model);
    const auto profile = profiler.profile(app);

    core::DynamicExecConfig cfg;
    cfg.noiseSalt = bench::benchNoiseSalt();
    const core::DynamicExecutor dyn(model, profile.interference, cfg);

    double makespan = 0.0;
    for (auto _ : state) {
        const auto run = dyn.execute(app);
        makespan = run.makespanSeconds;
        benchmark::ClobberMemory();
    }
    state.counters["virtual_makespan_ms"] = makespan * 1e3;
    state.SetItemsProcessed(state.iterations() * cfg.numTasks);
}
BENCHMARK(BM_GreedyDynamic);

} // namespace
