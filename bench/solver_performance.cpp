/**
 * @file
 * Reproduces the Sec. 3.3 solver claims: each solver invocation on the
 * paper's largest instance (9-stage AlexNet on the 4-PU Pixel)
 * completes well under 50 ms, and the top-ranked schedules cluster
 * into performance tiers.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/schedule.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Schedule-solver performance, AlexNet (9 stages) on "
                "Pixel (4 PUs)",
                "paper Sec. 3.3: < 50 ms per invocation, tiering");

    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = paperApp(0);
    const core::Profiler profiler(model);
    const auto profile = profiler.profile(app);

    using Clock = std::chrono::steady_clock;
    std::vector<double> times_ms;
    std::vector<core::Candidate> cands;
    std::uint64_t nodes = 0;
    for (int rep = 0; rep < 5; ++rep) {
        core::Optimizer opt(soc, profile.interference);
        const auto t0 = Clock::now();
        cands = opt.optimize();
        const auto t1 = Clock::now();
        times_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        nodes = opt.stats().solverNodes;
    }
    const Summary s = summarize(times_ms);
    // One optimize() = 21 solver invocations (level 1 + 20 level-2
    // solves with blocking clauses).
    std::printf("Full 3-level optimize(): mean %.2f ms (min %.2f, max "
                "%.2f) over %zu runs, %llu search nodes\n",
                s.mean, s.min, s.max, times_ms.size(),
                static_cast<unsigned long long>(nodes));
    std::printf("Per solver invocation (21 per optimize): %.2f ms "
                "(paper: < 50 ms per Z3 invocation)\n",
                s.mean / 21.0);

    std::printf("\nPredicted-latency tiers of the top-20 candidates "
                "(paper: contiguous groups within ~6%%):\n");
    Table table({"rank", "predicted (ms)", "tier"});
    int tier = 1;
    double tier_base = cands.front().predictedLatency;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const double lat = cands[i].predictedLatency;
        if (lat > tier_base * 1.06) {
            ++tier;
            tier_base = lat;
        }
        table.addRow({std::to_string(i + 1), Table::num(lat * 1e3, 3),
                      std::to_string(tier)});
    }
    table.print(std::cout);

    // Large-instance tier: the annealed engine where exact planning is
    // off the table. 14 stages on the 8-class manycore rig is ~1.7e8
    // schedules (112 assignment variables); the exact engines refuse
    // anything past their enumeration limit, the annealed engine plans
    // it within its fixed move budget.
    std::printf("\nLarge-instance tier: deep pipeline (%d stages) on "
                "the manycore rig (8 PUs)\n",
                bench::kDeepPipelineStages);
    const auto rig = platform::manycoreRig();
    const auto deep = deepPipelineTable(rig);
    const auto contention = deepPipelineContention(rig, deep);

    core::PlannerSpec spec;
    const std::uint64_t space
        = core::scheduleSpaceSize(deep.numStages(), rig.numPus());
    std::printf("Schedule space: %llu (exact engines refuse above "
                "%llu)\n",
                static_cast<unsigned long long>(space),
                static_cast<unsigned long long>(spec.exactSpaceLimit));

    spec.engine = core::PlannerEngine::Annealed;
    spec.contention.budgetGbps = rig.mem.dramBwGbps;
    spec.contentionProfile = &contention;
    std::vector<double> anneal_ms;
    for (int rep = 0; rep < 3; ++rep) {
        core::Optimizer opt(rig, deep, spec);
        const auto t0 = Clock::now();
        cands = opt.optimize();
        const auto t1 = Clock::now();
        anneal_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const Summary as = summarize(anneal_ms);
    std::printf("Annealed optimize(): mean %.2f ms (min %.2f, max "
                "%.2f) over %zu runs\n",
                as.mean, as.min, as.max, anneal_ms.size());
    std::printf("Best plan: %.3f ms predicted latency, %.2f GB/s "
                "demand (budget %.2f, feasible: %s)\n",
                cands.front().predictedLatency * 1e3,
                cands.front().predictedDemandGbps,
                spec.contention.budgetGbps,
                cands.front().predictedDemandGbps
                        <= spec.contention.budgetGbps + 1e-9
                    ? "yes"
                    : "NO");
    return 0;
}
