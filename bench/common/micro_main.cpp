/**
 * @file
 * Shared main() for the google-benchmark micro binaries, replacing
 * benchmark::benchmark_main so every snapshot's context records the
 * active SIMD tier. Trajectory comparisons (BENCH_*.json) must reject
 * deltas between different tiers the same way they reject mixed build
 * types: an avx2 run and a forced-scalar run are different machines as
 * far as kernel-body numbers are concerned.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "common/simd.hpp"
#include "kernels/simd_ops.hpp"

int
main(int argc, char** argv)
{
    const bt::kernels::SimdTier tier = bt::kernels::simdTier();
    benchmark::AddCustomContext("bt_simd_isa",
                                bt::simd::isaName(tier.isa));
    benchmark::AddCustomContext("bt_simd_lanes",
                                std::to_string(tier.lanes));
    benchmark::AddCustomContext("bt_simd_dispatch",
                                tier.forced ? "forced" : "runtime");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
