#include "bench/common/bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace bt::bench {

core::Application
paperApp(int app_index)
{
    switch (app_index) {
      case 0:
        return apps::alexnetDense();
      case 1:
        return apps::alexnetSparse();
      case 2:
        return apps::octreeApp();
      default:
        fatal("unknown application index ", app_index);
    }
}

std::vector<platform::SocDescription>
devices()
{
    return platform::paperDevices();
}

std::uint64_t
benchNoiseSalt()
{
    const char* env = std::getenv("BT_NOISE_SALT");
    return env ? std::strtoull(env, nullptr, 0) : 0;
}

core::BetterTogetherReport
runFlow(const platform::SocDescription& soc,
        const core::Application& app)
{
    core::BetterTogetherConfig cfg;
    cfg.executor.noiseSalt = benchNoiseSalt();
    const core::BetterTogether bt(soc, cfg);
    return bt.run(app);
}

namespace {

/** Hash jitter in [0, 1) for cell (s, p), independent of everything. */
double
cellJitter(std::uint64_t salt, int s, int p)
{
    const std::uint64_t h = hashCombine(
        salt, hashCombine(static_cast<std::uint64_t>(s),
                          static_cast<std::uint64_t>(p)));
    return static_cast<double>(h % 4096) / 4096.0;
}

} // namespace

core::ProfilingTable
deepPipelineTable(const platform::SocDescription& soc, int num_stages)
{
    std::vector<std::string> stages;
    for (int s = 0; s < num_stages; ++s)
        stages.push_back("deep" + std::to_string(s));
    std::vector<std::string> pus;
    for (const auto& p : soc.pus)
        pus.push_back(p.label);

    core::ProfilingTable table(std::move(stages), std::move(pus));
    for (int s = 0; s < num_stages; ++s) {
        // Stage weight cycles through five levels so chunk boundaries
        // matter; the per-cell jitter keeps PUs from tying exactly.
        const double stage_ms = 1.0 + 0.6 * static_cast<double>(
                                    (s * 7) % 5);
        for (int p = 0; p < soc.numPus(); ++p) {
            const double speed = 0.6
                + 0.2 * static_cast<double>((p * 3 + s) % 7);
            const double jitter
                = 0.75 + 0.5 * cellJitter(0xDEE9, s, p);
            table.set(s, p, 1e-3 * stage_ms * jitter / speed);
        }
    }
    return table;
}

platform::ContentionProfile
deepPipelineContention(const platform::SocDescription& soc,
                       const core::ProfilingTable& table)
{
    platform::ContentionProfile prof;
    prof.numStages = table.numStages();
    prof.numPus = table.numPus();
    prof.numBuckets = platform::ContentionModel::kBuckets;
    prof.rooflineGbps = soc.mem.dramBwGbps;

    const std::size_t cells = static_cast<std::size_t>(prof.numStages)
        * static_cast<std::size_t>(prof.numPus);
    prof.demandGbps_.resize(cells);
    prof.demandMilli_.resize(cells);
    // Every bucket stretches by exactly 1.0: the instance exercises
    // C6 budgets, not ambient slowdown.
    prof.stretch_.assign(cells * static_cast<std::size_t>(prof.numBuckets),
                         1.0);
    for (int s = 0; s < prof.numStages; ++s) {
        for (int p = 0; p < prof.numPus; ++p) {
            // Memory intensity in [0.25, 0.95): hungry stages on fat
            // links exceed an equal-share budget, frugal links never
            // do, so C6 filtering has real work.
            const double intensity
                = 0.25 + 0.7 * cellJitter(0xC6DE, s, p);
            const double gbps = soc.pus[static_cast<std::size_t>(p)]
                                    .memBwGbps
                * intensity;
            const std::size_t i = prof.cellIndex(s, p);
            prof.demandGbps_[i] = gbps;
            prof.demandMilli_[i]
                = platform::ContentionModel::milliGbps(gbps);
        }
    }
    return prof;
}

std::string
baselineCell(double cpu_ms, double gpu_ms)
{
    const bool cpu_wins = cpu_ms <= gpu_ms;
    std::string cell = Table::num(cpu_ms, 2) + " | "
        + Table::num(gpu_ms, 2);
    return (cpu_wins ? "*" : " ") + cell
        + (cpu_wins ? " " : " *");
}

void
printHeader(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(reproduces %s)\n\n", paper_ref.c_str());
}

} // namespace bt::bench
