#include "bench/common/bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace bt::bench {

core::Application
paperApp(int app_index)
{
    switch (app_index) {
      case 0:
        return apps::alexnetDense();
      case 1:
        return apps::alexnetSparse();
      case 2:
        return apps::octreeApp();
      default:
        fatal("unknown application index ", app_index);
    }
}

std::vector<platform::SocDescription>
devices()
{
    return platform::paperDevices();
}

std::uint64_t
benchNoiseSalt()
{
    const char* env = std::getenv("BT_NOISE_SALT");
    return env ? std::strtoull(env, nullptr, 0) : 0;
}

core::BetterTogetherReport
runFlow(const platform::SocDescription& soc,
        const core::Application& app)
{
    core::BetterTogetherConfig cfg;
    cfg.executor.noiseSalt = benchNoiseSalt();
    const core::BetterTogether bt(soc, cfg);
    return bt.run(app);
}

std::string
baselineCell(double cpu_ms, double gpu_ms)
{
    const bool cpu_wins = cpu_ms <= gpu_ms;
    std::string cell = Table::num(cpu_ms, 2) + " | "
        + Table::num(gpu_ms, 2);
    return (cpu_wins ? "*" : " ") + cell
        + (cpu_wins ? " " : " *");
}

void
printHeader(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(reproduces %s)\n\n", paper_ref.c_str());
}

} // namespace bt::bench
