/**
 * @file
 * Shared helpers for the paper-reproduction benchmarks: paper-scale
 * application builders, device lookup, and the standard flow runner.
 */

#ifndef BT_BENCH_BENCH_UTIL_HPP
#define BT_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/common/paper_data.hpp"
#include "core/pipeline.hpp"
#include "platform/contention.hpp"
#include "platform/devices.hpp"

namespace bt::bench {

/** Paper-scale instance of application @p app_index (Table-1 order). */
core::Application paperApp(int app_index);

/** Devices in Table-2 order. */
std::vector<platform::SocDescription> devices();

/**
 * Noise salt applied uniformly to every bench execution (static
 * pipeline and dynamic alike): the BT_NOISE_SALT environment variable,
 * or 0 (= the device seed alone). Re-running the suite with the same
 * salt reproduces every virtual-time number bit for bit.
 */
std::uint64_t benchNoiseSalt();

/** Run the full BetterTogether flow for (device, app). */
core::BetterTogetherReport runFlow(const platform::SocDescription& soc,
                                   const core::Application& app);

/** Stage count of the deep synthetic pipeline: 14 stages on the
 *  8-class manycoreRig() is ~1.7e8 schedules (112 assignment
 *  variables), far beyond the exact engines' enumeration limit. */
inline constexpr int kDeepPipelineStages = 14;

/**
 * Deterministic synthetic profiling table for a deep pipeline on
 * @p soc: structured stage/PU heterogeneity plus hash jitter, stable
 * across platforms and runs (no RNG state, no floating-point
 * accumulation order). The large-instance tier of the annealed-planner
 * benchmarks and tests plans over this table.
 */
core::ProfilingTable
deepPipelineTable(const platform::SocDescription& soc,
                  int num_stages = kDeepPipelineStages);

/**
 * Matching hand-built contention snapshot: per-(stage, PU) DRAM demand
 * derived from the PU link bandwidths (so C6 budgets bind), every
 * bucket stretching by exactly 1.0 (the instance exercises budgets,
 * not ambient slowdown).
 */
platform::ContentionProfile
deepPipelineContention(const platform::SocDescription& soc,
                       const core::ProfilingTable& table);

/** Format helper: "8.40 | 34.73" with the smaller value marked. */
std::string baselineCell(double cpu_ms, double gpu_ms);

/** Print the standard bench header line. */
void printHeader(const std::string& title, const std::string& paper_ref);

} // namespace bt::bench

#endif // BT_BENCH_BENCH_UTIL_HPP
