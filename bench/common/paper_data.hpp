/**
 * @file
 * Reference numbers transcribed from the paper's evaluation section, so
 * every benchmark can print its measured result next to the published
 * one. Indices: devices in Table-2 order (Pixel, OnePlus, Jetson,
 * Jetson LP), applications in Table-1 order (AlexNet-dense,
 * AlexNet-sparse, Octree).
 */

#ifndef BT_BENCH_PAPER_DATA_HPP
#define BT_BENCH_PAPER_DATA_HPP

#include <array>
#include <string>

namespace bt::bench {

constexpr int kNumDevices = 4;
constexpr int kNumApps = 3;

inline const std::array<std::string, kNumDevices> kDeviceNames{
    "Google Pixel 7a", "OnePlus 11", "Jetson Orin Nano",
    "Jetson Orin Nano (LP)"};

inline const std::array<std::string, kNumApps> kAppNames{
    "AlexNet-Dense", "AlexNet-Sparse", "Octree"};

/** Paper Table 3: homogeneous baseline latency (ms), CPU then GPU. */
struct BaselinePair
{
    double cpuMs;
    double gpuMs;
};

inline constexpr std::array<std::array<BaselinePair, kNumApps>,
                            kNumDevices>
    kTable3{{
        // Pixel:     dense            sparse          octree
        {{{155.63, 1.89}, {8.51, 8.35}, {8.40, 34.73}}},
        // OnePlus
        {{{113.88, 1.89}, {7.52, 3.95}, {5.99, 22.26}}},
        // Jetson
        {{{19.90, 1.04}, {4.81, 1.14}, {3.29, 1.08}}},
        // Jetson LP
        {{{11.36, 1.08}, {4.58, 1.78}, {4.26, 0.74}}},
    }};

/** Sec. 5.1: per-platform geomean speedups over the best baseline. */
inline constexpr std::array<double, kNumDevices> kFig4GeomeanPerDevice{
    5.10, 3.55, 1.09, 1.15};
/** Fig. 4 caption overall geomean (abstract quotes 2.72). */
inline constexpr double kFig4OverallGeomean = 2.17;
inline constexpr double kAbstractGeomean = 2.72;
inline constexpr double kMaxSpeedup = 8.40;

/**
 * Fig. 6a: Pearson correlation of the full BetterTogether flow, rows =
 * apps (dense, sparse, tree), cols = devices in OUR device order
 * (the paper's figure lists OnePlus first; re-ordered here).
 */
inline constexpr std::array<std::array<double, kNumDevices>, kNumApps>
    kFig6aBetterTogether{{
        {0.9990, 0.9968, 0.9491, 0.9548}, // CIFAR-D
        {0.9441, 0.9684, 0.8668, 0.8926}, // CIFAR-S
        {0.8450, 0.9418, 0.8283, 0.8886}, // Tree
    }};

/** Fig. 6b: isolated profiles + latency-only optimization. */
inline constexpr std::array<std::array<double, kNumDevices>, kNumApps>
    kFig6bIsolated{{
        {0.9497, 0.9740, 0.9481, 0.9472},
        {0.8887, 0.9678, 0.7005, 0.7325},
        {0.8220, 0.9816, 0.6532, 0.6839},
    }};

/**
 * Fig. 7 / Sec. 5.3: average interference-heavy / isolated time ratio
 * per PU class. Entries follow each device's PU order in
 * platform::paperDevices(); -1 marks classes the paper does not report.
 */
inline constexpr std::array<std::array<double, 4>, kNumDevices>
    kFig7Ratios{{
        // little, mid,  big,  gpu
        {1.39, 1.20, 1.40, 0.86},   // Pixel
        {0.63, 1.00, 1.38, 0.639},  // OnePlus
        {1.43, 1.19, -1.0, -1.0},   // Jetson: cpu, gpu
        {1.29, 1.74, -1.0, -1.0},   // Jetson LP: cpu, gpu
    }};

/** Table 4: top-10 AlexNet-sparse schedules on the Pixel (ms). */
inline constexpr std::array<double, 10> kTable4Measured{
    5.34, 5.38, 4.23, 3.96, 7.67, 5.35, 6.99, 5.48, 5.86, 7.37};
inline constexpr std::array<double, 10> kTable4Predicted{
    5.65, 5.86, 5.86, 5.86, 7.95, 7.95, 7.95, 7.95, 7.95, 7.95};

/** Sec. 5.2: mean correlation the paper reports for BT overall. */
inline constexpr double kMeanCorrelation = 0.92;

} // namespace bt::bench

#endif // BT_BENCH_PAPER_DATA_HPP
