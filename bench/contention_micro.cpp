/**
 * @file
 * Two-tenant contention suite (BENCH_contention.json): what the shared
 * ContentionModel buys a multi-tenant server on the bandwidth-starved
 * contention rig, plus the planning cost of the C6 constraint family.
 *
 * Flavours:
 *   BM_TwoTenantPlan_Blind — PR6-style disjoint PU leases, no
 *                            bandwidth awareness: each tenant plans a
 *                            roofline-saturating schedule within its
 *                            lease, oblivious to its co-runner;
 *   BM_TwoTenantPlan_Aware — contention-aware leases: fair-share C6
 *                            budgets plus ambient-stretched
 *                            predictions.
 * The timed body is the two tenants' plan pipeline (profile ->
 * optimize), so the pair also prices C6. The semantic anchors are the
 * counters: demand_sum_gbps vs roofline_gbps (the blind flavour must
 * oversubscribe, the aware one must fit) and worst_corun_ms — each
 * tenant's plan replayed on the virtual backend under the partner's
 * actual aggregate draw as ambient traffic (the aware worst tenant
 * must be faster). CI's benchmark-smoke step fails on any of these
 * inverting.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/application.hpp"
#include "core/sim_executor.hpp"
#include "platform/contention.hpp"
#include "platform/devices.hpp"
#include "platform/perf_model.hpp"
#include "service/service.hpp"

namespace {

using namespace bt;

/** The tests' asymmetric fixture (tests/test_contention.cpp): a
 *  memory block that saturates whichever link it lands on plus a
 *  compute tail; MemHeavy moves twice MemLight's bytes. */
core::Application
memPipeline(const std::string& name, double byte_scale)
{
    core::Application app(name, "buffer", "synthetic memory-bound");
    const auto add = [&](const char* sname, double flops,
                         double bytes) {
        platform::WorkProfile w;
        w.flops = flops;
        w.bytes = bytes;
        w.parallelFraction = 1.0;
        w.pattern = platform::Pattern::Dense;
        app.addStage(
            core::Stage(sname, w, [](core::KernelCtx&) {}, nullptr));
    };
    add("m1", 2e5, 8e5 * byte_scale);
    add("m2", 1e5, 6e5 * byte_scale);
    add("c1", 2e5, 1e3);
    return app;
}

service::ServiceConfig
rigConfig(bool contention_aware)
{
    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.run.numTasks = 6;
    cfg.profiler.repetitions = 3;
    cfg.contentionAware = contention_aware;
    return cfg;
}

/** Aggregate DRAM draw (GB/s) of a schedule, via the analytic model. */
double
demandOf(const platform::PerfModel& model, const core::Application& app,
         const core::Schedule& schedule)
{
    std::vector<platform::WorkProfile> works;
    for (const auto& stage : app.stages())
        works.push_back(stage.work());
    const platform::ContentionProfile profile
        = model.contention().profileStages(model, works);
    return static_cast<double>(profile.aggregateDemandMilli(
               schedule.toAssignment()))
        / 1000.0;
}

/** Steady-state task interval of a plan replayed on the virtual
 *  backend with the partner's draw as ambient traffic. */
double
coRunIntervalSeconds(const platform::PerfModel& model,
                     const core::Application& app,
                     const core::Schedule& plan, double partner_gbps)
{
    core::SimExecConfig cfg;
    cfg.numTasks = 24;
    cfg.ambientBandwidthGbps = partner_gbps;
    return core::SimExecutor(model, cfg)
        .execute(app, plan)
        .taskIntervalSeconds;
}

void
twoTenantPlan(benchmark::State& state, bool aware)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto heavy = memPipeline("MemHeavy", 1.0);
    const auto light = memPipeline("MemLight", 0.5);

    core::Schedule planHeavy, planLight;
    for (auto _ : state) {
        // The timed body is both tenants' plan pipeline (profile ->
        // optimize) under their round-robin leases, exactly what a
        // two-tenant service pays on a cold cache.
        service::Service svc(soc, rigConfig(aware));
        BT_ASSERT(svc.registerApp(heavy));
        BT_ASSERT(svc.registerApp(light));
        const auto a = svc.freshPlan("MemHeavy", 0, 0, 2);
        const auto b = svc.freshPlan("MemLight", 0, 1, 2);
        planHeavy = a.schedule;
        planLight = b.schedule;
        benchmark::DoNotOptimize(planHeavy);
        benchmark::DoNotOptimize(planLight);
    }

    // Semantic anchors (deterministic: the rig is noise-free).
    const double dHeavy = demandOf(model, heavy, planHeavy);
    const double dLight = demandOf(model, light, planLight);
    const double worst = std::max(
        coRunIntervalSeconds(model, heavy, planHeavy, dLight),
        coRunIntervalSeconds(model, light, planLight, dHeavy));
    state.counters["roofline_gbps"] = soc.mem.dramBwGbps;
    state.counters["demand_sum_gbps"] = dHeavy + dLight;
    state.counters["worst_corun_ms"] = worst * 1e3;
}

void
BM_TwoTenantPlan_Blind(benchmark::State& state)
{
    twoTenantPlan(state, /*aware=*/false);
}
BENCHMARK(BM_TwoTenantPlan_Blind)->Unit(benchmark::kMillisecond);

void
BM_TwoTenantPlan_Aware(benchmark::State& state)
{
    twoTenantPlan(state, /*aware=*/true);
}
BENCHMARK(BM_TwoTenantPlan_Aware)->Unit(benchmark::kMillisecond);

} // namespace
