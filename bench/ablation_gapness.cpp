/**
 * @file
 * Ablation of the DESIGN.md-called-out design choices: what each level
 * of the optimizer contributes. For every (device, application) pair
 * the deployed schedule's measured latency is compared across four
 * configurations:
 *   full      - interference table + gapness filter + autotuning,
 *   no-tune   - same but deploy the predicted-best (no level 3),
 *   no-gap    - latency-only optimization (no level 1 filter),
 *   isolated  - prior work: isolated table + latency-only, no tuning.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/autotuner.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

namespace {

struct Variant
{
    const char* name;
    bool interference_table;
    bool gapness_filter;
    bool autotune;
};

double
deployedLatencyMs(const platform::SocDescription& soc,
                  const core::Application& app,
                  const core::ProfileResult& profile, const Variant& v)
{
    const platform::PerfModel model(soc);
    core::PlannerSpec cfg;
    cfg.utilizationFilter = v.gapness_filter;
    const auto& tbl
        = v.interference_table ? profile.interference : profile.isolated;
    core::Optimizer opt(soc, tbl, cfg);
    const auto cands = opt.optimize();

    const core::SimExecutor executor(model);
    if (!v.autotune)
        return executor.execute(app, cands.front().schedule)
                   .taskIntervalSeconds
            * 1e3;
    const core::AutoTuner tuner(executor);
    return tuner.tune(app, cands).best().measuredLatency * 1e3;
}

} // namespace

int
main()
{
    printHeader("Ablation: contribution of each optimization level",
                "DESIGN.md ablation; lower is better, 'full' should "
                "win or tie");

    const Variant variants[] = {
        {"full", true, true, true},
        {"no-tune", true, true, false},
        {"no-gap", true, false, true},
        {"isolated", false, false, false},
    };

    Table table({"Device", "App", "full (ms)", "no-tune", "no-gap",
                 "isolated", "worst regression"});
    CsvWriter csv("ablation_gapness.csv",
                  {"device", "app", "variant", "latency_ms"});

    std::vector<double> regressions;
    const auto socs = devices();
    for (const auto& soc : socs) {
        const platform::PerfModel model(soc);
        const core::Profiler profiler(model);
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            const auto profile = profiler.profile(app);
            std::vector<double> ms;
            for (const auto& v : variants) {
                ms.push_back(deployedLatencyMs(soc, app, profile, v));
                csv.addRow({soc.name,
                            kAppNames[static_cast<std::size_t>(a)],
                            v.name, Table::num(ms.back(), 4)});
            }
            const double worst
                = *std::max_element(ms.begin() + 1, ms.end());
            regressions.push_back(worst / ms[0]);
            table.addRow({soc.name,
                          kAppNames[static_cast<std::size_t>(a)],
                          Table::num(ms[0], 2), Table::num(ms[1], 2),
                          Table::num(ms[2], 2), Table::num(ms[3], 2),
                          Table::num(worst / ms[0], 2) + "x"});
        }
    }
    table.print(std::cout);
    std::printf("\nGeomean worst-ablation regression vs full flow: "
                "%.2fx\n",
                geomean(regressions));
    return 0;
}
