/**
 * @file
 * Google-benchmark coverage of the fault-injection and recovery layer.
 *
 * Two things are on trial: the *zero-overhead claim* of the fault-free
 * fast path (a run with an empty FaultPlan must cost the same wall
 * clock - and produce the identical virtual makespan - as the plain
 * pipeline benchmark), and the wall-clock price of each fault class
 * when it is actually armed (transients + retries, straggler-tripped
 * timeouts, a mid-stream PU dropout with graceful degradation).
 *
 * Each benchmark exports its virtual makespan and the headline recovery
 * counters, so the JSON snapshot (BENCH_faults.json) doubles as a
 * semantic regression check: the seeded fault draws pin every recovery
 * decision, so these numbers must not move across refactors.
 */

#include <benchmark/benchmark.h>

#include "apps/octree_app.hpp"
#include "bench/common/bench_util.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"

namespace {

using namespace bt;

const std::vector<int> kAssignment = {0, 1, 1, 3, 3, 3, 2};

core::SimExecConfig
baseConfig()
{
    core::SimExecConfig cfg;
    cfg.noiseSalt = bench::benchNoiseSalt();
    return cfg;
}

void
runAndReport(benchmark::State& state, const core::SimExecConfig& cfg)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const auto schedule = core::Schedule::fromAssignment(kAssignment);
    const core::SimExecutor executor(model, cfg);

    runtime::RunResult run;
    for (auto _ : state) {
        run = executor.execute(app, schedule);
        benchmark::ClobberMemory();
    }
    state.counters["virtual_makespan_ms"] = run.makespanSeconds * 1e3;
    state.counters["faults_injected"] = run.recovery.faultsInjected();
    state.counters["retries"] = run.recovery.retries;
    state.counters["remaps"] = run.recovery.remaps;
    state.counters["replans"] = run.recovery.replans;
    state.counters["unrecovered"] = run.recovery.unrecovered;
    state.SetItemsProcessed(state.iterations() * cfg.numTasks);
}

/** Baseline: no FaultPlan at all (must match BM_VirtualPipeline's
 *  pixel_octree makespan bit-for-bit). */
void
BM_FaultFree(benchmark::State& state)
{
    runAndReport(state, baseConfig());
}
BENCHMARK(BM_FaultFree);

/** Empty plan but a populated RecoveryPolicy: the fault machinery must
 *  stay cold, so wall clock and makespan match BM_FaultFree. */
void
BM_EmptyPlanArmedPolicy(benchmark::State& state)
{
    auto cfg = baseConfig();
    cfg.faults.faultSeed = 0xabcdef; // still empty(): no rules
    cfg.recovery.timeoutFactor = 8.0;
    cfg.recovery.maxRetries = 5;
    runAndReport(state, cfg);
}
BENCHMARK(BM_EmptyPlanArmedPolicy);

/** Transient failures on every stage, recovered by retry. */
void
BM_TransientRetries(benchmark::State& state)
{
    auto cfg = baseConfig();
    cfg.faults.transients.push_back({-1, -1, 0.1});
    runAndReport(state, cfg);
}
BENCHMARK(BM_TransientRetries);

/** Stragglers big enough to trip the timeout watchdog. */
void
BM_StragglerTimeouts(benchmark::State& state)
{
    auto cfg = baseConfig();
    cfg.faults.stragglers.push_back({-1, 0.05, 100.0});
    cfg.recovery.timeoutFactor = 8.0;
    runAndReport(state, cfg);
}
BENCHMARK(BM_StragglerTimeouts);

/** Thermal-throttle window on the bottleneck chunk's PU over the
 *  first two thirds of the run (throttling a non-bottleneck PU is
 *  mostly absorbed by pipeline slack). */
void
BM_SlowdownWindow(benchmark::State& state)
{
    auto cfg = baseConfig();
    cfg.faults.slowdowns.push_back({0, 0.0, 0.1, 0.5});
    runAndReport(state, cfg);
}
BENCHMARK(BM_SlowdownWindow);

/** Hard GPU dropout mid-stream; the Optimizer re-plans on survivors. */
void
BM_DropoutDegradation(benchmark::State& state)
{
    auto cfg = baseConfig();
    cfg.faults.dropouts.push_back({3, 0.02});
    runAndReport(state, cfg);
}
BENCHMARK(BM_DropoutDegradation);

} // namespace
