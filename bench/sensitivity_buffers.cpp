/**
 * @file
 * Multi-buffering sensitivity (extension; paper Sec. 3.4 uses "multiple
 * TaskObjects to enable overlapping execution" without quantifying how
 * many): steady-state interval and energy of the BetterTogether
 * schedule as the number of in-flight TaskObjects grows. One buffer
 * serializes the chunks; the curve flattens once every chunk can stay
 * busy.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Task interval vs. in-flight TaskObjects",
                "multi-buffering sensitivity (paper Sec. 3.4)");

    Table table({"Device", "App", "chunks", "B=1", "B=2", "B=3", "B=5",
                 "B=8"});
    CsvWriter csv("sensitivity_buffers.csv",
                  {"device", "app", "buffers", "ms_per_task",
                   "mj_per_task"});

    for (const auto& soc : devices()) {
        const core::BetterTogether flow(soc);
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            const auto report = flow.run(app);

            std::vector<std::string> row{
                soc.name, kAppNames[static_cast<std::size_t>(a)],
                std::to_string(report.bestSchedule.numChunks())};
            for (const int buffers : {1, 2, 3, 5, 8}) {
                core::SimExecConfig cfg;
                cfg.numBuffers = buffers;
                const core::SimExecutor exec(flow.model(), cfg);
                const auto run
                    = exec.execute(app, report.bestSchedule);
                row.push_back(Table::num(run.latencyMs(), 3));
                csv.addRow({soc.name,
                            kAppNames[static_cast<std::size_t>(a)],
                            std::to_string(buffers),
                            Table::num(run.latencyMs(), 4),
                            Table::num(run.energyPerTaskJ() * 1e3,
                                       4)});
            }
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::printf("\nShape check: the interval drops until B reaches the "
                "chunk count, then flattens (the bottleneck chunk is "
                "saturated).\n");
    return 0;
}
