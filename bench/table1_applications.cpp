/**
 * @file
 * Reproduces paper Table 1: characteristics of the evaluated
 * applications, generated from the actual Application objects.
 */

#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/table.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Characteristics of evaluated applications",
                "paper Table 1");

    Table table({"Application", "Input", "Stages", "Characteristics"});
    for (int a = 0; a < kNumApps; ++a) {
        const auto app = paperApp(a);
        table.addRow({app.name(), app.inputKind(),
                      std::to_string(app.numStages()),
                      app.characteristics()});
    }
    table.print(std::cout);
    return 0;
}
