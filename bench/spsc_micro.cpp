/**
 * @file
 * Google-benchmark microbenchmarks of the pipeline hand-off machinery:
 * SPSC queue throughput (single-threaded and ping-pong) and thread-pool
 * fork-join overhead - the per-task costs the BT-Implementer pays at
 * every chunk boundary.
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "sched/spsc_queue.hpp"
#include "sched/thread_pool.hpp"

namespace {

using namespace bt::sched;

void
BM_SpscPushPop(benchmark::State& state)
{
    SpscQueue<void*> q(64);
    int x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.tryPush(&x));
        benchmark::DoNotOptimize(q.tryPop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

void
BM_SpscPingPong(benchmark::State& state)
{
    SpscQueue<std::int64_t> to_worker(16);
    SpscQueue<std::int64_t> from_worker(16);
    std::atomic<bool> stop{false};

    std::thread worker([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            auto v = to_worker.tryPop();
            if (!v) {
                std::this_thread::yield();
                continue;
            }
            while (!from_worker.tryPush(*v))
                std::this_thread::yield();
        }
    });

    std::int64_t i = 0;
    for (auto _ : state) {
        while (!to_worker.tryPush(i))
            std::this_thread::yield();
        std::optional<std::int64_t> v;
        while (!(v = from_worker.tryPop()))
            std::this_thread::yield();
        benchmark::DoNotOptimize(*v);
        ++i;
    }
    stop.store(true);
    worker.join();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPingPong);

void
BM_ThreadPoolForkJoin(benchmark::State& state)
{
    ThreadPool pool(static_cast<int>(state.range(0)));
    std::atomic<std::int64_t> sink{0};
    for (auto _ : state) {
        pool.parallelFor(0, 64, [&](std::int64_t v) {
            sink.fetch_add(v, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolForkJoin)->Arg(1)->Arg(2)->Arg(4);

} // namespace
