/**
 * @file
 * Serving load-generator suite (BENCH_service.json): what the schedule
 * cache buys a multi-tenant server, measured like a serving system -
 * achieved throughput and latency percentiles against offered load.
 *
 * Flavours per workload mix:
 *   *_ColdPlan  — closed loop, cache disabled: every request pays the
 *                 full profile -> optimize planner on the hot path
 *                 (the bt::Framework-per-request baseline);
 *   *_Cached    — the same offered load with the keyed schedule cache:
 *                 plan once per (app, load-bucket, lease) key, serve
 *                 every other request from a reader-locked shard.
 * The headline comparison is achieved_rps between the two flavours at
 * equal offered load (the cached path must hold a >= 10x advantage;
 * CI enforces it), with p50_ms/p99_ms and hit_rate alongside.
 *
 * BM_Serve_OpenLoop offers requests at a fixed rate (the Arg, QPS)
 * instead of back-to-back, showing achieved vs offered throughput and
 * the admission drops once the offered rate exceeds capacity.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "apps/features.hpp"
#include "apps/octree_app.hpp"
#include "bt.hpp"
#include "platform/devices.hpp"

namespace {

using namespace bt;

constexpr int kRequestsPerRound = 64;
constexpr int kSessions = 4;

service::ServiceConfig
servingConfig(bool cached)
{
    service::ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 4096; // closed loop: never drop
    cfg.cacheEnabled = cached;
    cfg.run.numTasks = 12;
    return cfg;
}

/** One closed-loop round: submit the mix back-to-back, then drain. */
void
offerRound(Service& svc)
{
    for (int i = 0; i < kRequestsPerRound; ++i) {
        service::Request req;
        req.session = i % kSessions;
        req.app = (i % 3 == 0) ? "FeatureExtract" : "Octree";
        svc.submit(std::move(req));
    }
    svc.drain();
}

void
reportCounters(benchmark::State& state, const ServiceReport& report,
               double last_round_rps)
{
    state.counters["achieved_rps"] = last_round_rps;
    state.counters["p50_ms"] = report.p50Ms;
    state.counters["p99_ms"] = report.p99Ms;
    state.counters["hit_rate"] = report.cache.hitRate();
    state.counters["plans"] = static_cast<double>(report.plans);
    state.counters["completed"] = static_cast<double>(report.completed);
    state.counters["dropped"] = static_cast<double>(report.dropped);
    state.counters["failed"] = static_cast<double>(report.failed);
}

void
BM_Serve(benchmark::State& state, bool cached)
{
    Service svc(platform::pixel7a(), servingConfig(cached));
    BT_ASSERT(svc.registerApp(apps::octreeApp()));
    BT_ASSERT(svc.registerApp(apps::featuresApp()));

    double last_round_rps = 0.0;
    ServiceReport prev = svc.report();
    for (auto _ : state) {
        svc.start();
        offerRound(svc);
        svc.stop();
        const ServiceReport now = svc.report();
        const double roundSeconds = now.wallSeconds - prev.wallSeconds;
        last_round_rps = roundSeconds > 0.0
            ? static_cast<double>(now.completed - prev.completed)
                / roundSeconds
            : 0.0;
        prev = now;
    }
    reportCounters(state, prev, last_round_rps);
    state.SetItemsProcessed(state.iterations() * kRequestsPerRound);
}
void
BM_Serve_ColdPlan(benchmark::State& state)
{
    BM_Serve(state, false);
}
void
BM_Serve_Cached(benchmark::State& state)
{
    BM_Serve(state, true);
}
BENCHMARK(BM_Serve_ColdPlan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Serve_Cached)->Unit(benchmark::kMillisecond);

/**
 * Open loop at a fixed offered rate (Arg = QPS): requests are released
 * on a schedule regardless of completions, so queueing delay and drops
 * appear once the offered rate exceeds the service capacity.
 */
void
BM_Serve_OpenLoop(benchmark::State& state)
{
    const int qps = static_cast<int>(state.range(0));
    auto cfg = servingConfig(true);
    cfg.queueCapacity = 256; // bounded: overload shows up as drops
    Service svc(platform::pixel7a(), cfg);
    BT_ASSERT(svc.registerApp(apps::octreeApp()));
    BT_ASSERT(svc.registerApp(apps::featuresApp()));

    constexpr int kOpenRequests = 200;
    const auto interval
        = std::chrono::nanoseconds(1'000'000'000ll / qps);

    double last_round_rps = 0.0;
    ServiceReport prev = svc.report();
    for (auto _ : state) {
        svc.start();
        auto release = std::chrono::steady_clock::now();
        for (int i = 0; i < kOpenRequests; ++i) {
            std::this_thread::sleep_until(release);
            release += interval;
            service::Request req;
            req.session = i % kSessions;
            req.app = (i % 3 == 0) ? "FeatureExtract" : "Octree";
            svc.submit(std::move(req));
        }
        svc.stop();
        const ServiceReport now = svc.report();
        const double roundSeconds = now.wallSeconds - prev.wallSeconds;
        last_round_rps = roundSeconds > 0.0
            ? static_cast<double>(now.completed - prev.completed)
                / roundSeconds
            : 0.0;
        prev = now;
    }
    reportCounters(state, prev, last_round_rps);
    state.counters["offered_qps"] = static_cast<double>(qps);
    state.SetItemsProcessed(state.iterations() * kOpenRequests);
}
BENCHMARK(BM_Serve_OpenLoop)
    ->Unit(benchmark::kMillisecond)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000);

} // namespace
