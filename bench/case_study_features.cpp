/**
 * @file
 * Case study (extension): the full BetterTogether flow applied to a
 * workload the paper never saw - the seven-stage feature-extraction
 * pipeline (apps/features.hpp). The point is the framework's claim to
 * generality: no per-workload tuning, just Stage definitions with
 * WorkProfiles, and the profile -> optimize -> autotune flow produces
 * specialized schedules per device.
 */

#include <cstdio>
#include <iostream>

#include "apps/features.hpp"
#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Case study: feature extraction (unseen workload)",
                "framework-generality check beyond the paper's three "
                "applications");

    const auto app = apps::featuresApp();
    std::vector<std::string> names;
    for (const auto& s : app.stages())
        names.push_back(s.name());

    Table table({"Device", "BT (ms)", "CPU (ms)", "GPU (ms)",
                 "speedup", "correlation", "schedule"});
    CsvWriter csv("case_study_features.csv",
                  {"device", "bt_ms", "cpu_ms", "gpu_ms", "speedup",
                   "correlation", "schedule"});

    std::vector<double> speedups;
    for (const auto& soc : devices()) {
        const core::BetterTogether flow(soc);
        const auto report = flow.run(app);

        // Model-accuracy check on the fresh workload.
        const core::SimExecutor executor(flow.model());
        std::vector<double> predicted, measured;
        for (const auto& c : report.candidates) {
            predicted.push_back(c.predictedLatency);
            measured.push_back(executor.execute(app, c.schedule)
                                   .taskIntervalSeconds);
        }
        const double r = pearson(predicted, measured);
        const double speedup = report.speedupOverBestBaseline();
        speedups.push_back(speedup);

        table.addRow({soc.name,
                      Table::num(report.bestLatencySeconds * 1e3, 2),
                      Table::num(report.cpuBaselineSeconds * 1e3, 2),
                      Table::num(report.gpuBaselineSeconds * 1e3, 2),
                      Table::num(speedup, 2) + "x", Table::num(r, 3),
                      report.bestSchedule.toString(soc, names)});
        csv.addRow({soc.name,
                    Table::num(report.bestLatencySeconds * 1e3, 4),
                    Table::num(report.cpuBaselineSeconds * 1e3, 4),
                    Table::num(report.gpuBaselineSeconds * 1e3, 4),
                    Table::num(speedup, 4), Table::num(r, 4),
                    report.bestSchedule.compactString()});
    }
    table.print(std::cout);
    std::printf("\nGeomean speedup on the unseen workload: %.2fx; "
                "schedules differ per device, as the paper's "
                "portability argument predicts.\n",
                geomean(speedups));
    return 0;
}
