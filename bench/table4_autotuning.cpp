/**
 * @file
 * Reproduces paper Table 4: measured and predicted latency of the top
 * 10 optimizer candidates for AlexNet-sparse on the Google Pixel, the
 * speedup of each against the predicted-best (schedule 1), and the
 * autotuning gain of picking the measured best (Sec. 3.3, level 3).
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/autotuner.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Top-10 schedules, AlexNet-sparse on Google Pixel (ms)",
                "paper Table 4");

    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = paperApp(1);

    const core::Profiler profiler(model);
    const auto profile = profiler.profile(app);
    core::Optimizer opt(soc, profile.interference);
    auto cands = opt.optimize();
    if (cands.size() > 10)
        cands.resize(10);

    const core::SimExecutor executor(model);
    const core::AutoTuner tuner(executor);
    const auto report = tuner.tune(app, cands);

    // Re-assemble in predicted rank order for the table rows.
    std::vector<const core::TunedCandidate*> by_rank(cands.size());
    for (const auto& tc : report.all)
        by_rank[static_cast<std::size_t>(tc.rankPredicted)] = &tc;

    Table table({"#", "Measured", "Predicted", "Speedup vs #1",
                 "paper Measured", "paper Predicted"});
    CsvWriter csv("table4_autotuning.csv",
                  {"rank", "measured_ms", "predicted_ms", "speedup",
                   "schedule"});

    const double first_measured = by_rank[0]->measuredLatency;
    for (std::size_t i = 0; i < by_rank.size(); ++i) {
        const auto& tc = *by_rank[i];
        table.addRow(
            {std::to_string(i + 1),
             Table::num(tc.measuredLatency * 1e3, 2),
             Table::num(tc.candidate.predictedLatency * 1e3, 2),
             Table::num(first_measured / tc.measuredLatency, 2),
             Table::num(kTable4Measured[i], 2),
             Table::num(kTable4Predicted[i], 2)});
        csv.addRow({std::to_string(i + 1),
                    Table::num(tc.measuredLatency * 1e3, 4),
                    Table::num(tc.candidate.predictedLatency * 1e3, 4),
                    Table::num(first_measured / tc.measuredLatency, 4),
                    tc.candidate.schedule.compactString()});
    }
    table.print(std::cout);

    std::printf("\nAutotuning gain (measured best vs predicted best): "
                "%.2fx (paper: 1.35x)\n",
                report.autotuningGain());
    std::printf("Autotuning campaign virtual cost: %.1f s (paper: "
                "~200 s per device/application)\n",
                report.campaignCostSeconds);
    std::printf("Shape check: predicted values cluster into tiers; "
                "measured values re-rank within tiers.\n");
    return 0;
}
