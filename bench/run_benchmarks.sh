#!/usr/bin/env bash
# Run the microbenchmark trajectory suite and snapshot the results as
# JSON at the repository root.
#
# Usage: bench/run_benchmarks.sh [build-dir] [min-time]
#
#   build-dir  CMake build tree for the benchmark binaries
#              (default: build-bench). The script configures/builds it
#              as Release itself; pointing it at an existing tree is
#              allowed only if that tree is already a Release build -
#              mixed-mode snapshots are exactly the trajectory noise
#              this guard exists to prevent.
#   min-time   --benchmark_min_time per benchmark, in seconds, as a
#              plain double (default: 0.25)
#
# Outputs (repo root):
#   BENCH_kernels.json   kernels_micro — kernel bodies, dispatch-tier
#                        pairs (Templated vs Erased), and host-body
#                        trajectory pairs (Tuned vs SeedPath)
#   BENCH_spsc.json      spsc_micro — queue hot-path latency
#   BENCH_pipeline.json  pipeline_micro — unified-runtime pipeline
#                        executions; the virtual_makespan_ms counters
#                        are semantic regression anchors (same
#                        schedules, same seeds)
#   BENCH_faults.json    faults_micro — fault-injection/recovery layer:
#                        the empty-plan fast path must match the plain
#                        pipeline makespan, and the seeded fault runs
#                        pin their recovery counters
#   BENCH_optimizer.json optimizer_throughput — plan-throughput suite:
#                        *_SeedPath vs *_Throughput pairs give the
#                        memoized/parallel planning speedup inside one
#                        snapshot
#   BENCH_service.json   service_load — serving load generator:
#                        BM_Serve_ColdPlan vs BM_Serve_Cached give the
#                        schedule-cache serving speedup (achieved_rps)
#                        at equal offered load; BM_Serve_OpenLoop
#                        sweeps offered QPS
#   BENCH_contention.json contention_micro — two-tenant planning on
#                        the contention rig: Blind vs Aware pin the
#                        DRAM oversubscription (demand_sum_gbps vs
#                        roofline_gbps) and the worst-tenant co-run
#                        latency (worst_corun_ms) with and without the
#                        C6 budget
#
# Every snapshot context records bt_build_type so trajectory
# comparisons can reject mixed-mode deltas (the benchmark library's own
# library_build_type field describes the system libbenchmark, not this
# code).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"
min_time="${2:-0.25}"

case "$build_dir" in
    /*) ;;
    *) build_dir="$repo_root/$build_dir" ;;
esac

# Benchmarks are only meaningful from an optimized build. Configure the
# tree as Release (a no-op when already configured that way) and refuse
# trees pinned to another build type.
cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Release > /dev/null
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:STRING=//p' \
    "$build_dir/CMakeCache.txt")"
if [[ "$build_type" != "Release" ]]; then
    echo "error: $build_dir is configured as '$build_type', not" \
         "Release; benchmarks must come from an optimized build" >&2
    exit 1
fi
cmake --build "$build_dir" -j "$(nproc)" --target \
    kernels_micro spsc_micro pipeline_micro faults_micro \
    optimizer_throughput service_load contention_micro > /dev/null

run_one() {
    local binary="$1" out="$2"
    if [[ ! -x "$binary" ]]; then
        echo "error: $binary not built (run: cmake --build $build_dir -j)" >&2
        exit 1
    fi
    echo "== $(basename "$binary") -> $out"
    "$binary" \
        --benchmark_min_time="$min_time" \
        --benchmark_context=bt_build_type="$build_type" \
        --benchmark_format=json \
        --benchmark_out="$out" \
        --benchmark_out_format=json \
        > /dev/null
}

run_one "$build_dir/bench/kernels_micro" "$repo_root/BENCH_kernels.json"
run_one "$build_dir/bench/spsc_micro" "$repo_root/BENCH_spsc.json"
run_one "$build_dir/bench/pipeline_micro" "$repo_root/BENCH_pipeline.json"
run_one "$build_dir/bench/faults_micro" "$repo_root/BENCH_faults.json"
run_one "$build_dir/bench/optimizer_throughput" \
        "$repo_root/BENCH_optimizer.json"
run_one "$build_dir/bench/service_load" "$repo_root/BENCH_service.json"
run_one "$build_dir/bench/contention_micro" \
        "$repo_root/BENCH_contention.json"

echo "done: BENCH_kernels.json, BENCH_spsc.json, BENCH_pipeline.json," \
     "BENCH_faults.json, BENCH_optimizer.json, BENCH_service.json," \
     "BENCH_contention.json"
