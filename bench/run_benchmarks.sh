#!/usr/bin/env bash
# Run the microbenchmark trajectory suite and snapshot the results as
# JSON at the repository root.
#
# Usage: bench/run_benchmarks.sh [build-dir] [min-time]
#
#   build-dir  CMake build tree holding the benchmark binaries
#              (default: build)
#   min-time   --benchmark_min_time per benchmark, in seconds, as a
#              plain double (default: 0.25)
#
# Outputs (repo root):
#   BENCH_kernels.json  kernels_micro — kernel bodies, dispatch-tier
#                       pairs (Templated vs Erased), and host-body
#                       trajectory pairs (Tuned vs SeedPath)
#   BENCH_spsc.json     spsc_micro — queue hot-path latency
#   BENCH_pipeline.json pipeline_micro — unified-runtime pipeline
#                       executions; the virtual_makespan_ms counters
#                       are semantic regression anchors (same
#                       schedules, same seeds)
#   BENCH_faults.json   faults_micro — fault-injection/recovery layer:
#                       the empty-plan fast path must match the plain
#                       pipeline makespan, and the seeded fault runs
#                       pin their recovery counters
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
min_time="${2:-0.25}"

case "$build_dir" in
    /*) ;;
    *) build_dir="$repo_root/$build_dir" ;;
esac

run_one() {
    local binary="$1" out="$2"
    if [[ ! -x "$binary" ]]; then
        echo "error: $binary not built (run: cmake --build $build_dir -j)" >&2
        exit 1
    fi
    echo "== $(basename "$binary") -> $out"
    "$binary" \
        --benchmark_min_time="$min_time" \
        --benchmark_format=json \
        --benchmark_out="$out" \
        --benchmark_out_format=json \
        > /dev/null
}

run_one "$build_dir/bench/kernels_micro" "$repo_root/BENCH_kernels.json"
run_one "$build_dir/bench/spsc_micro" "$repo_root/BENCH_spsc.json"
run_one "$build_dir/bench/pipeline_micro" "$repo_root/BENCH_pipeline.json"
run_one "$build_dir/bench/faults_micro" "$repo_root/BENCH_faults.json"

echo "done: BENCH_kernels.json, BENCH_spsc.json, BENCH_pipeline.json," \
     "BENCH_faults.json"
