/**
 * @file
 * Reproduces paper Fig. 5: predicted vs measured latency of the top 20
 * schedules for AlexNet-sparse on the Google Pixel under the three
 * modeling strategies:
 *   (a) BetterTogether: interference-aware table + utilization filter,
 *   (b) latency-only optimization on the interference-aware table,
 *   (c) latency-only optimization on the isolated table (prior work).
 * Prints per-rank predictions/measurements and the Pearson correlation
 * of each strategy.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

namespace {

struct Strategy
{
    const char* name;
    bool interference_table;
    bool utilization_filter;
};

} // namespace

int
main()
{
    printHeader(
        "Predicted vs measured, top-20 schedules, AlexNet-sparse on "
        "Pixel",
        "paper Fig. 5a/5b/5c");

    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = paperApp(1); // AlexNet-sparse

    const core::Profiler profiler(model);
    const auto profile = profiler.profile(app);
    const core::SimExecutor executor(model);

    const Strategy strategies[] = {
        {"(a) BetterTogether", true, true},
        {"(b) latency-only + interference table", true, false},
        {"(c) latency-only + isolated table", false, false},
    };

    CsvWriter csv("fig5_model_accuracy.csv",
                  {"strategy", "rank", "predicted_ms", "measured_ms"});

    for (const auto& strat : strategies) {
        core::PlannerSpec cfg;
        cfg.utilizationFilter = strat.utilization_filter;
        const auto& tbl = strat.interference_table
            ? profile.interference
            : profile.isolated;
        core::Optimizer opt(soc, tbl, cfg);
        const auto cands = opt.optimize();

        std::vector<double> predicted, measured;
        Table table({"rank", "predicted (ms)", "measured (ms)"});
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const auto run = executor.execute(app, cands[i].schedule);
            predicted.push_back(cands[i].predictedLatency * 1e3);
            measured.push_back(run.taskIntervalSeconds * 1e3);
            table.addRow({std::to_string(i + 1),
                          Table::num(predicted.back(), 2),
                          Table::num(measured.back(), 2)});
            csv.addRow({strat.name, std::to_string(i + 1),
                        Table::num(predicted.back(), 4),
                        Table::num(measured.back(), 4)});
        }
        const double r = pearson(predicted, measured);
        std::printf("--- %s ---\n", strat.name);
        table.print(std::cout);
        std::printf("Pearson correlation: %.4f\n\n", r);
    }

    std::printf("Shape check (paper): (a) tracks closely; (b) and (c) "
                "show visible divergence, (c) worst.\n");
    return 0;
}
