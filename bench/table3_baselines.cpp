/**
 * @file
 * Reproduces paper Table 3: raw homogeneous baseline latency (ms) for
 * each device, CPU (big cores) vs GPU, across the three applications.
 * Measured numbers come from the simulated executor; the paper's
 * numbers are printed alongside for shape comparison.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Raw baseline performance (ms), CPU | GPU",
                "paper Table 3; * marks the faster side");

    Table table({"Device", "App", "measured CPU|GPU", "paper CPU|GPU",
                 "CPU ratio", "GPU ratio"});
    CsvWriter csv("table3_baselines.csv",
                  {"device", "app", "cpu_ms", "gpu_ms", "paper_cpu_ms",
                   "paper_gpu_ms"});

    const auto socs = devices();
    for (int d = 0; d < kNumDevices; ++d) {
        const auto& soc = socs[static_cast<std::size_t>(d)];
        const core::BetterTogether bt_flow(soc);
        for (int a = 0; a < kNumApps; ++a) {
            const auto app = paperApp(a);
            const double cpu_ms = bt_flow.measureHomogeneous(
                                      app, soc.bigCpuIndex())
                * 1e3;
            const double gpu_ms = bt_flow.measureHomogeneous(
                                      app, soc.gpuIndex())
                * 1e3;
            const auto paper
                = kTable3[static_cast<std::size_t>(d)]
                         [static_cast<std::size_t>(a)];
            table.addRow({soc.name,
                          kAppNames[static_cast<std::size_t>(a)],
                          baselineCell(cpu_ms, gpu_ms),
                          baselineCell(paper.cpuMs, paper.gpuMs),
                          Table::num(cpu_ms / paper.cpuMs, 2),
                          Table::num(gpu_ms / paper.gpuMs, 2)});
            csv.addRow({soc.name,
                        kAppNames[static_cast<std::size_t>(a)],
                        Table::num(cpu_ms, 4), Table::num(gpu_ms, 4),
                        Table::num(paper.cpuMs, 2),
                        Table::num(paper.gpuMs, 2)});
        }
    }
    table.print(std::cout);
    std::printf("\nShape check: the faster side (*) should agree with "
                "the paper in every row.\n");
    return 0;
}
