/**
 * @file
 * Measurement-noise sensitivity (extension; methodological robustness
 * of Sec. 5.2): how the predicted-vs-measured correlation of the
 * BetterTogether flow degrades as the device's timing jitter grows.
 * The paper's 30-repetition averaging is what keeps the table usable;
 * this sweep shows how much headroom that provides.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"

using namespace bt;
using namespace bt::bench;

int
main()
{
    printHeader("Prediction correlation vs. measurement noise",
                "robustness sweep around the Fig. 6 methodology");

    Table table({"App", "sigma=0", "1%", "3%", "6%", "10%"});
    CsvWriter csv("sensitivity_noise.csv",
                  {"app", "noise_sigma", "correlation"});

    for (int a = 0; a < kNumApps; ++a) {
        std::vector<std::string> row{
            kAppNames[static_cast<std::size_t>(a)]};
        for (const double sigma : {0.0, 0.01, 0.03, 0.06, 0.10}) {
            auto soc = platform::pixel7a();
            soc.noiseSigma = sigma;
            const platform::PerfModel model(soc);
            const auto app = paperApp(a);
            const core::Profiler profiler(model);
            const auto profile = profiler.profile(app);
            core::Optimizer opt(soc, profile.interference);
            const auto cands = opt.optimize();

            const core::SimExecutor executor(model);
            std::vector<double> predicted, measured;
            for (const auto& c : cands) {
                predicted.push_back(c.predictedLatency);
                measured.push_back(executor.execute(app, c.schedule)
                                       .taskIntervalSeconds);
            }
            const double r = pearson(predicted, measured);
            row.push_back(Table::num(r, 3));
            csv.addRow({kAppNames[static_cast<std::size_t>(a)],
                        Table::num(sigma, 2), Table::num(r, 4)});
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::printf("\nShape check: correlation stays high through "
                "realistic jitter (a few percent) and erodes "
                "gracefully beyond it.\n");
    return 0;
}
