/**
 * @file
 * bt::lint tests: the seeded-defect negative control, cleanliness of
 * every shipped app on every device rig, Report::merge associativity
 * and JSON round-trip (MiniJson pattern from test_runtime), the
 * 8-thread concurrent-lint hammer proving the analyzer is read-only
 * over shared Applications, and the Framework/Service integration
 * (preflight panic with a stable kind prefix, tenant rejection at
 * admission).
 */

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "bt.hpp"
#include "lint/fixtures.hpp"
#include "lint/lint.hpp"
#include "platform/devices.hpp"

namespace bt {
namespace {

using core::Application;
using core::BufferAccess;
using core::KernelCtx;
using core::PlannerSpec;
using core::Stage;
using core::StageIo;
using platform::Pattern;
using platform::WorkProfile;

// ---------------------------------------------------------------------
// Minimal JSON parser (same pattern as test_runtime/test_service): just
// enough to genuinely parse Report::writeJson output.

class MiniJson
{
  public:
    explicit MiniJson(const std::string& text) : s_(text) {}

    bool
    parse()
    {
        pos_ = 0;
        if (!value())
            return false;
        ws();
        return pos_ == s_.size();
    }

    int objects() const { return objects_; }

    int
    keyCount(const std::string& key) const
    {
        const auto it = keys_.find(key);
        return it == keys_.end() ? 0 : it->second;
    }

  private:
    void
    ws()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    lit(const char* word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string(std::string* out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        std::string val;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            val += s_[pos_++];
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;
        if (out)
            *out = val;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E' || s_[pos_] == '-'
                   || s_[pos_] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(s_[pos_])))
                digits = true;
            ++pos_;
        }
        return digits && pos_ > start;
    }

    bool
    value()
    {
        ws();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return lit("true");
        if (c == 'f')
            return lit("false");
        if (c == 'n')
            return lit("null");
        return number();
    }

    bool
    object()
    {
        ++pos_;
        ++objects_;
        ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            std::string key;
            if (!string(&key))
                return false;
            ++keys_[key];
            ws();
            if (pos_ >= s_.size() || s_[pos_++] != ':')
                return false;
            if (!value())
                return false;
            ws();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;
        ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    std::string s_;
    std::size_t pos_ = 0;
    int objects_ = 0;
    std::map<std::string, int> keys_;
};

// ---------------------------------------------------------------------
// Helpers.

std::string
toJson(const lint::Report& report)
{
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

Stage
ioStage(const std::string& name, StageIo io)
{
    Stage s(name, WorkProfile{1e6, 1e4, 0.9, Pattern::Dense},
            [](KernelCtx&) {}, nullptr);
    s.setIo(std::move(io));
    return s;
}

/** Two declared stages, fully consistent IO. */
Application
cleanApp()
{
    Application app("clean", "fixture", "");
    app.declareBuffer({"in", 4096, /*input=*/true});
    app.declareBuffer({"mid", 4096});
    app.declareBuffer({"out", 4096, false, /*output=*/true});
    app.addStage(
        ioStage("produce", {{{"in", 4096}}, {{"mid", 4096}}}));
    app.addStage(
        ioStage("consume", {{{"mid", 4096}}, {{"out", 4096}}}));
    return app;
}

/** Reads a buffer nothing defines: lints with a UseBeforeDef error. */
Application
brokenApp()
{
    Application app("broken", "fixture", "");
    app.declareBuffer({"in", 4096, /*input=*/true});
    app.declareBuffer({"mid", 4096});
    app.declareBuffer({"out", 4096, false, /*output=*/true});
    app.addStage(
        ioStage("produce", {{{"in", 4096}}, {{"out", 4096}}}));
    app.addStage(
        ioStage("consume", {{{"mid", 4096}}, {{"out", 4096}}}));
    return app;
}

// ---------------------------------------------------------------------
// Negative control: every seeded defect must be flagged with its
// expected kind, deterministically.

TEST(LintFixtures, EverySeededDefectIsFlaggedWithItsExpectedKind)
{
    const auto results = lint::runSeededDefects();
    EXPECT_GE(results.size(), 10u);
    for (const auto& r : results) {
        EXPECT_TRUE(r.flagged)
            << r.name << " did not produce "
            << lint::diagnosticKindName(r.expected);
        EXPECT_GE(r.totalFindings, 1u) << r.name;
    }
}

TEST(LintFixtures, FixtureReportsAreByteIdenticalAcrossRuns)
{
    const auto a = lint::runSeededDefects();
    const auto b = lint::runSeededDefects();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(toJson(a[i].report), toJson(b[i].report)) << a[i].name;
    }
}

// ---------------------------------------------------------------------
// Positive control: every shipped app lints clean on every device rig
// with the default spec and run config (what CI's lint sweep asserts
// through bt_explorer --lint --app all).

TEST(LintShippedApps, CleanOnEveryDeviceRig)
{
    const std::vector<platform::SocDescription> rigs
        = {platform::pixel7a(), platform::oneplus11(),
           platform::jetsonOrinNano(), platform::jetsonOrinNanoLp(),
           platform::manycoreRig()};
    const std::vector<core::Application> shipped = []() {
        std::vector<core::Application> apps;
        apps.push_back(apps::alexnetDense());
        apps.push_back(apps::alexnetSparse());
        apps.push_back(apps::octreeApp());
        return apps;
    }();

    for (const auto& soc : rigs) {
        for (const auto& app : shipped) {
            // Same annealed fallback Service::plannerSpecFor applies:
            // the exact engines refuse spaces past exactSpaceLimit.
            PlannerSpec spec;
            if (spec.exactnessPreserving()
                && core::scheduleSpaceSize(app.numStages(),
                                           soc.numPus())
                       > spec.exactSpaceLimit)
                spec.engine = core::PlannerEngine::Annealed;
            const auto report
                = lint::lintPreflight(soc, app, spec, {});
            EXPECT_TRUE(report.clean())
                << app.name() << " on " << soc.name << ":\n"
                << toJson(report);
            EXPECT_EQ(report.infos(), 0)
                << app.name() << " should declare full IO";
        }
    }
}

TEST(LintShippedApps, ManycoreDefaultSpecIsCaughtBeforeThePanic)
{
    // The exact engine would panic on this space at optimize() time;
    // lint reports it statically instead, with remediation.
    const auto report = lint::lintPreflight(platform::manycoreRig(),
                                            apps::octreeApp(), {}, {});
    EXPECT_EQ(report.errors(), 1);
    ASSERT_FALSE(report.diagnostics.empty());
    EXPECT_EQ(report.diagnostics[0].kind,
              lint::DiagnosticKind::ExactSpaceExceeded);
    EXPECT_NE(report.diagnostics[0].message.find("Annealed"),
              std::string::npos);
}

TEST(LintShippedApps, DeclaredIoMatchesTheOctreeTaskLayout)
{
    const auto report = lint::lintApplication(apps::octreeApp());
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.stats.stages, 7);
    EXPECT_EQ(report.stats.buffers, 21);
}

TEST(LintApplication, UndeclaredAppGetsOneInfoAndPasses)
{
    Application app("bare", "fixture", "");
    app.addStage(Stage("only",
                       WorkProfile{1e6, 1e4, 0.9, Pattern::Dense},
                       [](KernelCtx&) {}, nullptr));
    const auto report = lint::lintApplication(app);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.infos(), 1);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].kind,
              lint::DiagnosticKind::NoIoDeclarations);
}

// ---------------------------------------------------------------------
// Report mechanics: stable names, merge associativity, JSON round-trip.

TEST(LintReport, KindAndSeverityNamesAreStable)
{
    using lint::DiagnosticKind;
    EXPECT_EQ(lint::diagnosticKindName(DiagnosticKind::UseBeforeDef),
              "use_before_def");
    EXPECT_EQ(
        lint::diagnosticKindName(DiagnosticKind::ExactSpaceExceeded),
        "exact_space_exceeded");
    EXPECT_EQ(
        lint::diagnosticKindName(DiagnosticKind::BandwidthOverBudget),
        "bandwidth_over_budget");
    EXPECT_EQ(lint::severityName(lint::Severity::Error), "error");
    EXPECT_EQ(lint::severityName(lint::Severity::Warn), "warn");
    EXPECT_EQ(lint::severityName(lint::Severity::Info), "info");
}

TEST(LintReport, MergeIsAssociativeAndOrderPreserving)
{
    const auto fixtures = lint::runSeededDefects();
    ASSERT_GE(fixtures.size(), 3u);
    const lint::Report& a = fixtures[0].report;
    const lint::Report& b = fixtures[1].report;
    const lint::Report& c = fixtures[2].report;

    lint::Report left = a;
    left.merge(b);
    left.merge(c);

    lint::Report bc = b;
    bc.merge(c);
    lint::Report right = a;
    right.merge(std::move(bc));

    EXPECT_EQ(toJson(left), toJson(right));
    EXPECT_EQ(left.diagnostics.size(),
              a.diagnostics.size() + b.diagnostics.size()
                  + c.diagnostics.size());
    // Order-preserving: the first merged diagnostic is a's first.
    ASSERT_FALSE(a.diagnostics.empty());
    EXPECT_EQ(left.diagnostics[0].toString(),
              a.diagnostics[0].toString());
}

TEST(LintReport, JsonRoundTripsThroughParser)
{
    lint::Report merged;
    for (const auto& r : lint::runSeededDefects())
        merged.merge(r.report);

    const std::string text = toJson(merged);
    MiniJson json(text);
    ASSERT_TRUE(json.parse()) << text;
    EXPECT_EQ(json.keyCount("clean"), 1);
    EXPECT_EQ(json.keyCount("errors"), 1);
    EXPECT_EQ(json.keyCount("warnings"), 1);
    EXPECT_EQ(json.keyCount("stats"), 1);
    EXPECT_EQ(json.keyCount("diagnostics"), 1);
    EXPECT_EQ(json.keyCount("kind"),
              static_cast<int>(merged.diagnostics.size()));
    EXPECT_EQ(json.keyCount("severity"),
              static_cast<int>(merged.diagnostics.size()));
}

// ---------------------------------------------------------------------
// Thread safety: lint is read-only over a shared Application; 8
// concurrent linters must produce byte-identical reports.

TEST(LintConcurrency, EightThreadHammerIsByteIdentical)
{
    const core::Application app = apps::octreeApp();
    const auto soc = platform::pixel7a();
    const std::string reference
        = toJson(lint::lintPreflight(soc, app, {}, {}));

    constexpr int kThreads = 8;
    constexpr int kIters = 16;
    std::vector<std::vector<std::string>> produced(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            for (int i = 0; i < kIters; ++i)
                produced[static_cast<std::size_t>(t)].push_back(
                    toJson(lint::lintPreflight(soc, app, {}, {})));
        });
    }
    for (auto& th : threads)
        th.join();
    for (const auto& per_thread : produced) {
        ASSERT_EQ(per_thread.size(),
                  static_cast<std::size_t>(kIters));
        for (const auto& text : per_thread)
            EXPECT_EQ(text, reference);
    }
}

// ---------------------------------------------------------------------
// Framework preflight: errors panic with the stable kind prefix and
// the offending diagnostics; warnings ride along in the report.

TEST(LintFramework, PreflightErrorsPanicWithKindPrefix)
{
    const auto soc = platform::pixel7a();
    const Framework framework(soc);
    EXPECT_DEATH_IF_SUPPORTED((void)framework.run(brokenApp()),
                              "lint.preflight");
    EXPECT_DEATH_IF_SUPPORTED((void)framework.run(brokenApp()),
                              "use_before_def");
}

TEST(LintFramework, PreflightReportRidesAlongOnCleanRuns)
{
    FrameworkConfig cfg;
    cfg.run.numTasks = 8;
    cfg.run.warmupTasks = 2;
    const Framework framework(platform::pixel7a(), cfg);
    const auto pre = framework.preflight(cleanApp());
    EXPECT_TRUE(pre.clean());

    const auto report = framework.run(cleanApp());
    EXPECT_TRUE(report.preflight.clean());
    EXPECT_GT(report.preflight.stats.passes, 0);
    EXPECT_GT(report.bestLatencySeconds, 0.0);
}

// ---------------------------------------------------------------------
// Service admission: tenants that lint with errors are refused and
// counted; clean tenants register.

TEST(LintService, RegisterAppRejectsErrorLintingTenants)
{
    service::Service svc(platform::pixel7a());
    EXPECT_TRUE(svc.registerApp(cleanApp()));
    EXPECT_FALSE(svc.registerApp(brokenApp()));
    EXPECT_FALSE(svc.registerApp(brokenApp()));

    const auto report = svc.report();
    EXPECT_EQ(report.tenantsRejected, 2);

    const std::string json = [&] {
        std::ostringstream os;
        report.writeJson(os);
        return os.str();
    }();
    EXPECT_NE(json.find("\"tenants_rejected\": 2"), std::string::npos)
        << json;
    MiniJson parsed(json);
    EXPECT_TRUE(parsed.parse()) << json;
}

TEST(LintService, LintTenantExposesTheAdmissionDecision)
{
    service::Service svc(platform::pixel7a());
    EXPECT_EQ(svc.lintTenant(cleanApp()).errors(), 0);
    EXPECT_GT(svc.lintTenant(brokenApp()).errors(), 0);
}

} // namespace
} // namespace bt
