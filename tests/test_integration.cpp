/**
 * @file
 * End-to-end integration tests: the complete BetterTogether flow on
 * every (device, application) pair, asserting the paper's qualitative
 * results - baseline winners (Table 3), interference-effect signs
 * (Fig. 7), no speedup regressions and mobile gains (Fig. 4), and
 * model-accuracy dominance of the interference-aware tables (Fig. 6).
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "platform/devices.hpp"

namespace bt::core {
namespace {

Application
appByIndex(int a)
{
    switch (a) {
      case 0:
        return apps::alexnetDense();
      case 1:
        return apps::alexnetSparse();
      default:
        return apps::octreeApp();
    }
}

struct Combo
{
    int device;
    int app;
};

class FullFlow : public ::testing::TestWithParam<Combo>
{
  protected:
    void
    SetUp() override
    {
        soc = platform::paperDevices()[static_cast<std::size_t>(
            GetParam().device)];
        app = std::make_unique<Application>(
            appByIndex(GetParam().app));
        flow = std::make_unique<BetterTogether>(soc);
        report = flow->run(*app);
    }

    platform::SocDescription soc;
    std::unique_ptr<Application> app;
    std::unique_ptr<BetterTogether> flow;
    BetterTogetherReport report;
};

TEST_P(FullFlow, NeverRegressesBelowBestBaseline)
{
    // The autotuned schedule may tie the best homogeneous baseline
    // (single-chunk schedules are in the search space) but must not
    // lose to it beyond noise.
    EXPECT_GE(report.speedupOverBestBaseline(), 0.97)
        << soc.name << " / " << app->name();
}

TEST_P(FullFlow, BeatsCpuOnlySubstantially)
{
    // The paper reports 11.23x geomean over CPU-only; individual cells
    // vary, but every one should improve on the CPU baseline.
    EXPECT_GT(report.speedupOverCpu(), 1.0)
        << soc.name << " / " << app->name();
}

TEST_P(FullFlow, PredictionTracksMeasurementWell)
{
    const SimExecutor executor(flow->model());
    std::vector<double> predicted, measured;
    for (const auto& c : report.candidates) {
        predicted.push_back(c.predictedLatency);
        measured.push_back(
            executor.execute(*app, c.schedule).taskIntervalSeconds);
    }
    // Paper Fig. 6a: >= 0.83 in every cell; we assert a safe floor.
    EXPECT_GT(pearson(predicted, measured), 0.85)
        << soc.name << " / " << app->name();
}

TEST_P(FullFlow, BaselineWinnerMatchesPaperTable3)
{
    // Which side wins CPU vs GPU per the paper's Table 3.
    const bool paper_gpu_wins[4][3] = {
        {true, true, false},  // Pixel: dense, sparse, octree
        {true, true, false},  // OnePlus
        {true, true, true},   // Jetson
        {true, true, true},   // Jetson LP
    };
    const bool gpu_wins
        = report.gpuBaselineSeconds < report.cpuBaselineSeconds;
    EXPECT_EQ(gpu_wins,
              paper_gpu_wins[GetParam().device][GetParam().app])
        << soc.name << " / " << app->name();
}

TEST_P(FullFlow, AutotunedNeverWorseThanPredictedBest)
{
    EXPECT_GE(report.tuning.autotuningGain(), 1.0 - 1e-9);
}

TEST_P(FullFlow, CandidatesAllValidForDevice)
{
    for (const auto& c : report.candidates)
        EXPECT_TRUE(c.schedule.valid(app->numStages(), soc.numPus()));
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (int d = 0; d < 4; ++d)
        for (int a = 0; a < 3; ++a)
            combos.push_back(Combo{d, a});
    return combos;
}

std::string
comboName(const ::testing::TestParamInfo<Combo>& info)
{
    const char* devices[] = {"Pixel", "OnePlus", "Jetson", "JetsonLP"};
    const char* apps[] = {"Dense", "Sparse", "Octree"};
    return std::string(devices[info.param.device]) + "_"
        + apps[info.param.app];
}

INSTANTIATE_TEST_SUITE_P(AllCombos, FullFlow,
                         ::testing::ValuesIn(allCombos()), comboName);

TEST(IntegrationHeadline, MobileSpeedupsExceedJetson)
{
    // Paper Sec. 5.1: mobile SoCs gain multiples; Jetson gains are
    // marginal (geomeans 5.10 / 3.55 vs 1.09 / 1.15).
    std::vector<double> mobile, jetson;
    const auto devices = platform::paperDevices();
    for (int d = 0; d < 4; ++d) {
        const BetterTogether flow(devices[static_cast<std::size_t>(d)]);
        for (int a = 0; a < 3; ++a) {
            const double s = flow.run(appByIndex(a))
                                 .speedupOverBestBaseline();
            (d < 2 ? mobile : jetson).push_back(s);
        }
    }
    EXPECT_GT(geomean(mobile), 1.5);
    EXPECT_GT(geomean(mobile), geomean(jetson) * 1.3);
    EXPECT_GT(geomean(jetson), 0.99);
}

TEST(IntegrationHeadline, InterferenceTableBeatsIsolatedOnSparse)
{
    // Fig. 6: the accuracy gap is widest on the sparse workload on
    // mobile devices.
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);
    const SimExecutor executor(model);

    auto correlation = [&](bool interference_aware) {
        PlannerSpec cfg;
        cfg.utilizationFilter = interference_aware;
        Optimizer opt(soc,
                      interference_aware ? profile.interference
                                         : profile.isolated,
                      cfg);
        std::vector<double> predicted, measured;
        for (const auto& c : opt.optimize()) {
            predicted.push_back(c.predictedLatency);
            measured.push_back(executor.execute(app, c.schedule)
                                   .taskIntervalSeconds);
        }
        return pearson(predicted, measured);
    };
    EXPECT_GT(correlation(true), correlation(false) + 0.2);
}

TEST(IntegrationHeadline, Fig7SignsReproduced)
{
    // Interference-heavy / isolated ratio signs per PU, as in Fig. 7.
    struct Expectation
    {
        int device;
        const char* pu;
        bool slows; ///< ratio > 1
    };
    const Expectation expectations[] = {
        {0, "little", true}, {0, "mid", true},   {0, "big", true},
        {0, "gpu", false},   {1, "little", false}, {1, "big", true},
        {1, "gpu", false},   {2, "cpu", true},   {2, "gpu", true},
        {3, "cpu", true},    {3, "gpu", true},
    };
    const auto devices = platform::paperDevices();
    for (const auto& e : expectations) {
        const auto& soc
            = devices[static_cast<std::size_t>(e.device)];
        const platform::PerfModel model(soc);
        const Profiler profiler(model);
        const auto profile = profiler.profile(apps::octreeApp());
        const int pu = soc.findPu(e.pu);
        ASSERT_GE(pu, 0);
        std::vector<double> ratios;
        for (int s = 0; s < profile.isolated.numStages(); ++s)
            ratios.push_back(profile.interference.at(s, pu)
                             / profile.isolated.at(s, pu));
        const double avg = mean(ratios);
        if (e.slows)
            EXPECT_GT(avg, 1.0) << soc.name << " " << e.pu;
        else
            EXPECT_LT(avg, 1.0) << soc.name << " " << e.pu;
    }
}

TEST(IntegrationHeadline, ScheduleSpaceMatchesPaperMath)
{
    // 9 stages, 4 PU classes: 2,116 contiguity-feasible schedules out
    // of the 4^9 = 262,144 unconstrained assignments the paper quotes.
    EXPECT_EQ(countSchedules(9, 4), 2116u);
    // 7 stages (octree): 4 + 6*12 + 15*24 + 20*24 = 916.
    EXPECT_EQ(countSchedules(7, 4), 916u);
    std::uint64_t unconstrained = 1;
    for (int i = 0; i < 9; ++i)
        unconstrained *= 4;
    EXPECT_EQ(unconstrained, 262144u);
}

} // namespace
} // namespace bt::core
