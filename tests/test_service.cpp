/**
 * @file
 * Tests for the multi-tenant serving front end: the sharded schedule
 * cache (hit/miss/eviction correctness, LRU order, byte-identity of
 * cached and fresh plans, concurrent hammer), PU leasing (disjoint
 * covering partitions, load quantization), and the Service itself
 * (every admitted request completes, cache hits dominate steady state,
 * per-session accounting, merged session-tagged traces).
 *
 * The hammer and end-to-end tests are also the TSan workload for the
 * service layer: they exercise concurrent lookups, racing insertions,
 * and the merged timeline under the sanitizer CI job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/features.hpp"
#include "apps/octree_app.hpp"
#include "bt.hpp"
#include "platform/devices.hpp"
#include "service/lease.hpp"
#include "service/schedule_cache.hpp"
#include "service/service.hpp"

namespace bt::service {
namespace {

ScheduleKey
key(const std::string& app, int bucket = 0, int lease = 0,
    int groups = 1)
{
    ScheduleKey k;
    k.app = app;
    k.platform = "test-soc";
    k.loadBucket = bucket;
    k.lease = lease;
    k.leaseGroups = groups;
    k.plannerFingerprint = 0xabcdef;
    return k;
}

CachedPlan
plan(int pu)
{
    CachedPlan p;
    p.schedule = core::Schedule::homogeneous(3, pu);
    p.predictedLatencySeconds = 0.001 * (pu + 1);
    return p;
}

// ---------------------------------------------------------------------
// Schedule cache: hit/miss/eviction correctness.

TEST(ScheduleCache, MissThenHitThenCounters)
{
    ScheduleCache cache;
    EXPECT_FALSE(cache.lookup(key("a")).has_value());
    EXPECT_TRUE(cache.insert(key("a"), plan(1)));

    const auto hit = cache.lookup(key("a"));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->schedule, plan(1).schedule);
    EXPECT_DOUBLE_EQ(hit->predictedLatencySeconds, 0.002);

    // A different load bucket is a different key.
    EXPECT_FALSE(cache.lookup(key("a", 1)).has_value());
    // So is a different lease partition or planner fingerprint.
    EXPECT_FALSE(cache.lookup(key("a", 0, 1, 2)).has_value());
    auto fp = key("a");
    fp.plannerFingerprint = 0x1234;
    EXPECT_FALSE(cache.lookup(fp).has_value());

    const auto st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 4u); // pre-insert probe + the three variants
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.size, 1u);
    EXPECT_DOUBLE_EQ(st.hitRate(), 0.2);
}

TEST(ScheduleCache, DuplicateInsertIsFirstWriterWins)
{
    ScheduleCache cache;
    EXPECT_TRUE(cache.insert(key("a"), plan(0)));
    EXPECT_FALSE(cache.insert(key("a"), plan(2)));
    // The incumbent survives; the raced insertion is counted.
    EXPECT_EQ(cache.lookup(key("a"))->schedule, plan(0).schedule);
    EXPECT_EQ(cache.stats().racedInsertions, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ScheduleCache, EvictsLeastRecentlyUsedWithinShard)
{
    // One shard makes LRU order exact and observable.
    ScheduleCacheConfig cfg;
    cfg.capacity = 3;
    cfg.shards = 1;
    ScheduleCache cache(cfg);
    EXPECT_EQ(cache.capacity(), 3u);

    cache.insert(key("a"), plan(0));
    cache.insert(key("b"), plan(1));
    cache.insert(key("c"), plan(2));
    // Touch a and c; b becomes the LRU entry.
    EXPECT_TRUE(cache.lookup(key("a")).has_value());
    EXPECT_TRUE(cache.lookup(key("c")).has_value());

    cache.insert(key("d"), plan(3));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.lookup(key("b")).has_value());
    EXPECT_TRUE(cache.lookup(key("a")).has_value());
    EXPECT_TRUE(cache.lookup(key("c")).has_value());
    EXPECT_TRUE(cache.lookup(key("d")).has_value());
}

TEST(ScheduleCache, SnapshotListsAllResidentEntries)
{
    ScheduleCache cache;
    cache.insert(key("a"), plan(0));
    cache.insert(key("b", 2), plan(1));
    const auto entries = cache.snapshot();
    ASSERT_EQ(entries.size(), 2u);
    std::set<std::string> apps;
    for (const auto& [k, p] : entries)
        apps.insert(k.app);
    EXPECT_EQ(apps, (std::set<std::string>{"a", "b"}));
}

// Concurrent hammer: many threads racing lookups and insertions over a
// small hot key set plus per-thread cold keys forcing evictions. Run
// under TSan in CI; the assertions here are the invariants that must
// hold regardless of interleaving.

TEST(ScheduleCache, ConcurrentHammerKeepsInvariants)
{
    ScheduleCacheConfig cfg;
    cfg.capacity = 16;
    cfg.shards = 4;
    ScheduleCache cache(cfg);

    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 2000;
    std::atomic<std::uint64_t> observedHits{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &observedHits, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                // Hot set of 4 keys shared by every thread, plus a
                // rotating cold tail unique to this thread.
                const bool hot = (i % 4) != 0;
                const ScheduleKey k = hot
                    ? key("hot", i % 4)
                    : key("cold-" + std::to_string(t), i % 97);
                if (auto found = cache.lookup(k)) {
                    // Value integrity: the plan is the one any thread
                    // inserted for this bucket (pu == bucket % 3).
                    EXPECT_EQ(found->schedule,
                              core::Schedule::homogeneous(
                                  3, k.loadBucket % 3));
                    observedHits.fetch_add(1,
                                           std::memory_order_relaxed);
                } else {
                    cache.insert(k, plan(k.loadBucket % 3));
                }
            }
        });
    }
    for (auto& thread : threads)
        thread.join();

    const auto st = cache.stats();
    EXPECT_EQ(st.hits, observedHits.load());
    EXPECT_EQ(st.hits + st.misses,
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    // Bounded: never more resident entries than capacity.
    EXPECT_LE(cache.size(), cache.capacity());
    // The hot set is small and hammered: most operations must hit.
    EXPECT_GT(st.hitRate(), 0.5);
    // Conservation: everything inserted was either evicted, raced out
    // before insertion, or is still resident.
    EXPECT_EQ(st.insertions, st.evictions + st.size);
}

// ---------------------------------------------------------------------
// PU leasing.

TEST(Lease, QuantizeLoadIsMonotoneAndBounded)
{
    EXPECT_EQ(quantizeLoad(0, 4, 4), 0);
    EXPECT_EQ(quantizeLoad(1, 4, 4), 0);
    EXPECT_EQ(quantizeLoad(8, 4, 4), 3);
    EXPECT_EQ(quantizeLoad(100, 4, 4), 3); // clamped to the top bucket
    int prev = 0;
    for (int inflight = 0; inflight <= 20; ++inflight) {
        const int b = quantizeLoad(inflight, 4, 4);
        EXPECT_GE(b, prev);
        EXPECT_LT(b, 4);
        prev = b;
    }
}

TEST(Lease, PartitionsAreDisjointAndCovering)
{
    const auto soc = platform::pixel7a();
    const PuLeaseManager leases(soc, 3);
    EXPECT_EQ(leases.maxGroups(), 3);

    // Single group: empty lease = whole SoC (no optimizer restriction).
    EXPECT_TRUE(leases.lease(0, 1).empty());

    for (int groups = 2; groups <= leases.maxGroups(); ++groups) {
        std::set<int> seen;
        for (int g = 0; g < groups; ++g) {
            const auto pus = leases.lease(g, groups);
            EXPECT_FALSE(pus.empty());
            for (int pu : pus) {
                EXPECT_TRUE(seen.insert(pu).second)
                    << "PU " << pu << " leased twice";
                EXPECT_GE(pu, 0);
                EXPECT_LT(pu, soc.numPus());
            }
        }
        EXPECT_EQ(static_cast<int>(seen.size()), soc.numPus());
    }

    // Group count grows with the load bucket, capped at maxGroups.
    EXPECT_EQ(leases.groupsAt(0), 1);
    EXPECT_EQ(leases.groupsAt(1), 2);
    EXPECT_EQ(leases.groupsAt(10), 3);
}

// ---------------------------------------------------------------------
// Service end to end.

ServiceConfig
quickConfig(int workers = 2)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.run.numTasks = 6;
    cfg.profiler.repetitions = 3; // keep the cold path quick in tests
    return cfg;
}

TEST(Service, EveryAdmittedRequestCompletes)
{
    Service service(platform::pixel7a(), quickConfig());
    service.registerApp(apps::octreeApp());
    service.registerApp(apps::featuresApp());
    service.start();

    std::atomic<int> done{0};
    std::atomic<int> okCount{0};
    constexpr int kRequests = 40;
    int admitted = 0;
    for (int i = 0; i < kRequests; ++i) {
        Request req;
        req.session = i % 3;
        req.app = (i % 2 == 0) ? "Octree" : "FeatureExtract";
        req.onDone = [&](const RequestResult& r) {
            done.fetch_add(1);
            if (r.ok)
                okCount.fetch_add(1);
            EXPECT_GE(r.latencySeconds, r.serviceSeconds);
        };
        if (service.submit(std::move(req)))
            ++admitted;
    }
    service.drain();
    const auto report = service.report();
    service.stop();

    EXPECT_EQ(admitted + report.dropped, kRequests);
    EXPECT_EQ(done.load(), admitted);
    EXPECT_EQ(okCount.load(), admitted);
    EXPECT_EQ(report.submitted, admitted);
    EXPECT_EQ(report.completed, admitted);
    EXPECT_EQ(report.failed, 0);
    // Steady state is served from the cache: far fewer plans than
    // requests, and a nonzero hit rate.
    EXPECT_LT(report.plans, report.completed);
    EXPECT_GT(report.cache.hitRate(), 0.0);
    // Per-session accounting adds up.
    std::int64_t sessions = 0;
    for (const auto& [session, count] : report.perSession)
        sessions += count;
    EXPECT_EQ(sessions, report.completed);
    EXPECT_GT(report.p50Ms, 0.0);
    EXPECT_GE(report.p99Ms, report.p50Ms);
}

TEST(Service, CachedPlanIsByteIdenticalToFreshPlan)
{
    Service service(platform::pixel7a(), quickConfig(1));
    service.registerApp(apps::octreeApp());
    service.start();

    std::mutex mu;
    std::vector<RequestResult> results;
    for (int i = 0; i < 6; ++i) {
        Request req;
        req.session = 0;
        req.app = "Octree";
        req.onDone = [&](const RequestResult& r) {
            std::lock_guard<std::mutex> lock(mu);
            results.push_back(r);
        };
        ASSERT_TRUE(service.submit(std::move(req)));
        service.drain(); // serialize so every request sees idle load
    }
    service.stop();

    ASSERT_EQ(results.size(), 6u);
    EXPECT_TRUE(results.front().planned);
    EXPECT_FALSE(results.front().cacheHit);

    // Every cached entry equals a from-scratch planner run for its key,
    // and every hit served exactly the schedule the first plan built.
    for (const auto& [k, cached] : service.cache().snapshot()) {
        const auto fresh = service.freshPlan(k.app, k.loadBucket,
                                             k.lease, k.leaseGroups);
        EXPECT_EQ(cached.schedule, fresh.schedule);
        EXPECT_DOUBLE_EQ(cached.predictedLatencySeconds,
                         fresh.predictedLatencySeconds);
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].cacheHit);
        EXPECT_EQ(results[i].schedule, results.front().schedule);
        // Identical plan + deterministic backend = identical run.
        EXPECT_DOUBLE_EQ(results[i].run.makespanSeconds,
                         results.front().run.makespanSeconds);
    }
}

TEST(Service, DisablingTheCachePlansPerRequest)
{
    auto cfg = quickConfig(1);
    cfg.cacheEnabled = false;
    Service service(platform::pixel7a(), cfg);
    service.registerApp(apps::octreeApp());
    service.start();
    for (int i = 0; i < 4; ++i)
        service.submit({0, "Octree", nullptr});
    service.stop();
    const auto report = service.report();
    EXPECT_EQ(report.completed, 4);
    EXPECT_EQ(report.plans, 4);
    EXPECT_EQ(report.cache.hits + report.cache.misses, 0u);
}

TEST(Service, OverflowDropsAreCountedNotLost)
{
    auto cfg = quickConfig(1);
    cfg.queueCapacity = 2;
    Service service(platform::pixel7a(), cfg);
    service.registerApp(apps::octreeApp());
    // Not started: the queue never drains, so overflow is guaranteed
    // deterministic... but submit() on a stopped service refuses.
    EXPECT_FALSE(service.submit({0, "Octree", nullptr}));
    service.start();
    int admitted = 0;
    for (int i = 0; i < 50; ++i)
        if (service.submit({0, "Octree", nullptr}))
            ++admitted;
    service.stop();
    const auto report = service.report();
    EXPECT_EQ(report.completed, admitted);
    EXPECT_EQ(report.submitted + report.dropped, 51);
    EXPECT_GT(report.dropped, 0);
}

TEST(Service, MergedTraceTagsSessions)
{
    auto cfg = quickConfig();
    cfg.collectTraces = true;
    cfg.maxTracedRequests = 8;
    Service service(platform::pixel7a(), cfg);
    service.registerApp(apps::octreeApp());
    service.start();
    for (int i = 0; i < 8; ++i)
        service.submit({i % 2, "Octree", nullptr});
    service.stop();

    const auto report = service.report();
    ASSERT_FALSE(report.trace.empty());
    const std::string json = report.trace.chromeJson();
    // Both tenants' sessions appear, tagged, in the merged export.
    EXPECT_NE(json.find("\"session\":0"), std::string::npos);
    EXPECT_NE(json.find("\"session\":1"), std::string::npos);
    EXPECT_NE(json.find("\"s0:"), std::string::npos);
    EXPECT_NE(json.find("\"s1:"), std::string::npos);
}

TEST(Service, ReportJsonIsWellFormed)
{
    Service service(platform::pixel7a(), quickConfig(1));
    service.registerApp(apps::octreeApp());
    service.start();
    for (int i = 0; i < 3; ++i)
        service.submit({i, "Octree", nullptr});
    service.stop();

    std::ostringstream os;
    service.report().writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"cache\""), std::string::npos);
    EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
    // Balanced braces (the bench and CI parse this report).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// Concurrent submitters against a running pool: the TSan end-to-end
// workload. Checks nothing is lost or double-counted under contention.

TEST(Service, ConcurrentSubmittersAreAccountedExactly)
{
    auto cfg = quickConfig(4);
    cfg.queueCapacity = 1024;
    cfg.run.numTasks = 3;
    Service service(platform::pixel7a(), cfg);
    service.registerApp(apps::octreeApp());
    service.registerApp(apps::featuresApp());
    service.start();

    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 25;
    std::atomic<int> admitted{0};
    std::atomic<int> done{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&service, &admitted, &done, t] {
            for (int i = 0; i < kPerThread; ++i) {
                Request req;
                req.session = t;
                req.app = (i % 2 == 0) ? "Octree" : "FeatureExtract";
                req.onDone
                    = [&done](const RequestResult&) { done.fetch_add(1); };
                if (service.submit(std::move(req)))
                    admitted.fetch_add(1);
            }
        });
    }
    for (auto& thread : submitters)
        thread.join();
    service.drain();
    const auto report = service.report();
    service.stop();

    EXPECT_EQ(report.completed, admitted.load());
    EXPECT_EQ(done.load(), admitted.load());
    EXPECT_EQ(report.dropped,
              kSubmitters * kPerThread - admitted.load());
    EXPECT_EQ(report.failed, 0);
    EXPECT_GT(report.cache.hitRate(), 0.0);
}

} // namespace
} // namespace bt::service
