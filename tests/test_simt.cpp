/**
 * @file
 * Unit tests for the SIMT execution layer: launch coverage, grid-stride
 * iteration, block-order independence, and the device-wide cooperative
 * algorithms (reduce, scan, histogram, radix sort) against references.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "simt/algorithms.hpp"
#include "simt/simt.hpp"

namespace bt::simt {
namespace {

TEST(LaunchConfig, CoverRoundsUp)
{
    const auto cfg = LaunchConfig::cover(100, 32, 1024);
    EXPECT_EQ(cfg.blockDim, 32);
    EXPECT_EQ(cfg.gridDim, 4);
    EXPECT_GE(cfg.totalThreads(), 100);
}

TEST(LaunchConfig, CoverClampsGrid)
{
    const auto cfg = LaunchConfig::cover(1 << 20, 64, 16);
    EXPECT_EQ(cfg.gridDim, 16);
}

TEST(LaunchConfig, CoverHandlesZero)
{
    const auto cfg = LaunchConfig::cover(0, 64, 16);
    EXPECT_EQ(cfg.gridDim, 1);
}

TEST(LaunchConfig, CoverHugeElementCountDoesNotOverflow)
{
    // n + block - 1 overflows int64 for n near the maximum; cover must
    // still clamp to max_grid instead of producing a negative grid.
    const auto cfg = LaunchConfig::cover(
        std::numeric_limits<std::int64_t>::max(), 64, 1024);
    EXPECT_EQ(cfg.blockDim, 64);
    EXPECT_EQ(cfg.gridDim, 1024);

    const auto near_max = LaunchConfig::cover(
        std::numeric_limits<std::int64_t>::max() - 1, 256, 1 << 20);
    EXPECT_EQ(near_max.gridDim, 1 << 20);
}

TEST(Launch, EveryThreadRunsOnce)
{
    const LaunchConfig cfg{7, 13};
    std::vector<int> hits(static_cast<std::size_t>(cfg.totalThreads()),
                          0);
    launch(cfg, [&](const WorkItem& item) {
        ++hits[static_cast<std::size_t>(item.globalId())];
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Launch, WorkItemGeometry)
{
    const LaunchConfig cfg{3, 4};
    launch(cfg, [&](const WorkItem& item) {
        EXPECT_EQ(item.gridDim, 3);
        EXPECT_EQ(item.blockDim, 4);
        EXPECT_GE(item.blockIdx, 0);
        EXPECT_LT(item.blockIdx, 3);
        EXPECT_GE(item.threadIdx, 0);
        EXPECT_LT(item.threadIdx, 4);
        EXPECT_EQ(item.globalId(),
                  item.blockIdx * 4 + item.threadIdx);
        EXPECT_EQ(item.globalSize(), 12);
    });
}

TEST(Launch, GridStrideCoversRange)
{
    const std::int64_t n = 1000;
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    launch(LaunchConfig{4, 32}, [&](const WorkItem& item) {
        gridStride(item, n, [&](std::int64_t i) {
            ++hits[static_cast<std::size_t>(i)];
        });
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Launch, ShuffledMatchesSerialForRaceFreeKernel)
{
    const std::int64_t n = 513;
    std::vector<std::int64_t> a(static_cast<std::size_t>(n), 0);
    std::vector<std::int64_t> b(static_cast<std::size_t>(n), 0);
    const auto cfg = LaunchConfig::cover(n, 32, 8);
    launch(cfg, [&](const WorkItem& item) {
        gridStride(item, n, [&](std::int64_t i) {
            a[static_cast<std::size_t>(i)] = i * i;
        });
    });
    launchShuffled(cfg,
                   [&](const WorkItem& item) {
                       gridStride(item, n, [&](std::int64_t i) {
                           b[static_cast<std::size_t>(i)] = i * i;
                       });
                   },
                   12345);
    EXPECT_EQ(a, b);
}

class DeviceAlgoSizes : public ::testing::TestWithParam<std::int64_t>
{
  protected:
    std::vector<std::uint32_t>
    randomKeys(std::int64_t n, std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<std::uint32_t> keys(static_cast<std::size_t>(n));
        for (auto& k : keys)
            k = static_cast<std::uint32_t>(rng.nextU64());
        return keys;
    }
};

TEST_P(DeviceAlgoSizes, ReduceMatchesAccumulate)
{
    const auto keys = randomKeys(GetParam(), 1);
    std::uint64_t expect = 0;
    for (auto k : keys)
        expect += k;
    EXPECT_EQ(deviceReduce(keys), expect);
}

TEST_P(DeviceAlgoSizes, ExclusiveScanMatchesReference)
{
    const auto in = randomKeys(GetParam(), 2);
    // Use small values so 32-bit prefix sums cannot overflow.
    std::vector<std::uint32_t> small(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        small[i] = in[i] % 16;
    std::vector<std::uint32_t> out(in.size(), 0);
    const std::uint64_t total = deviceExclusiveScan(small, out);

    std::uint64_t run = 0;
    for (std::size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(out[i], run) << "at " << i;
        run += small[i];
    }
    EXPECT_EQ(total, run);
}

TEST_P(DeviceAlgoSizes, ScanInPlaceAliasing)
{
    auto data = randomKeys(GetParam(), 3);
    for (auto& v : data)
        v %= 8;
    const auto copy = data;
    deviceExclusiveScan(data, data);
    std::uint32_t run = 0;
    for (std::size_t i = 0; i < copy.size(); ++i) {
        EXPECT_EQ(data[i], run);
        run += copy[i];
    }
}

TEST_P(DeviceAlgoSizes, HistogramMatchesReference)
{
    const auto keys = randomKeys(GetParam(), 4);
    constexpr std::uint32_t buckets = 256;
    std::vector<std::uint32_t> counts(buckets, 0);
    deviceHistogram(keys, 8, buckets, counts);

    std::vector<std::uint32_t> expect(buckets, 0);
    for (auto k : keys)
        ++expect[(k >> 8) & (buckets - 1)];
    EXPECT_EQ(counts, expect);
}

TEST_P(DeviceAlgoSizes, RadixSortSortsAndPreservesMultiset)
{
    auto keys = randomKeys(GetParam(), 5);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    std::vector<std::uint32_t> scratch(keys.size());
    deviceRadixSort(keys, scratch);
    EXPECT_EQ(keys, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeviceAlgoSizes,
                         ::testing::Values(0, 1, 2, 63, 64, 1000, 4096,
                                           100000));

TEST(DeviceRadixPass, StableWithinDigit)
{
    // Keys sharing the low byte must keep their relative order after a
    // pass on shift 0. Encode original position in the high bits.
    std::vector<std::uint32_t> keys;
    for (std::uint32_t i = 0; i < 500; ++i)
        keys.push_back((i << 8) | (i % 3));
    std::vector<std::uint32_t> out(keys.size());
    deviceRadixPass(keys, out, 0, 8);
    // Within each digit class, the high bits must increase.
    std::uint32_t last_seen[3] = {0, 0, 0};
    for (auto k : keys)
        (void)k;
    for (auto k : out) {
        const std::uint32_t digit = k & 0xFF;
        ASSERT_LT(digit, 3u);
        EXPECT_GE(k >> 8, last_seen[digit]);
        last_seen[digit] = k >> 8;
    }
}

TEST(DeviceRadixSort, AlreadySortedAndReverse)
{
    std::vector<std::uint32_t> asc(1000);
    std::iota(asc.begin(), asc.end(), 0u);
    auto desc = asc;
    std::reverse(desc.begin(), desc.end());
    std::vector<std::uint32_t> scratch(asc.size());

    auto a = asc;
    deviceRadixSort(a, scratch);
    EXPECT_EQ(a, asc);

    deviceRadixSort(desc, scratch);
    EXPECT_EQ(desc, asc);
}

} // namespace
} // namespace bt::simt
