/**
 * @file
 * Tests for BT-Profiler and BT-Optimizer: profiling-table structure and
 * interference signatures, solver-vs-exhaustive cross-validation
 * (identical candidate rankings), gapness filtering, blocking-clause
 * diversity, and the latency-only comparison configurations of
 * Fig. 5b/5c.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "core/optimizer.hpp"
#include "core/schedule_eval.hpp"
#include "core/profiler.hpp"
#include "platform/devices.hpp"
#include "solver/solver.hpp"

namespace bt::core {
namespace {

/** Fixture giving each test a profiled AlexNet-sparse on the Pixel. */
class ProfiledPixel : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        soc = platform::pixel7a();
        model = std::make_unique<platform::PerfModel>(soc);
        app = std::make_unique<Application>(apps::alexnetSparse());
        Profiler profiler(*model);
        result = profiler.profile(*app);
    }

    platform::SocDescription soc;
    std::unique_ptr<platform::PerfModel> model;
    std::unique_ptr<Application> app;
    ProfileResult result;
};

TEST_F(ProfiledPixel, TableShapeMatchesAppAndDevice)
{
    EXPECT_EQ(result.isolated.numStages(), app->numStages());
    EXPECT_EQ(result.isolated.numPus(), soc.numPus());
    EXPECT_EQ(result.interference.numStages(), app->numStages());
    EXPECT_EQ(result.isolated.stages()[0], "conv1");
    EXPECT_EQ(result.isolated.pus()[3], "gpu");
}

TEST_F(ProfiledPixel, AllEntriesPositiveWithNoiseStddev)
{
    for (int s = 0; s < result.isolated.numStages(); ++s) {
        for (int p = 0; p < result.isolated.numPus(); ++p) {
            EXPECT_GT(result.isolated.at(s, p), 0.0);
            EXPECT_GT(result.interference.at(s, p), 0.0);
            EXPECT_GT(result.isolated.stddevAt(s, p), 0.0);
        }
    }
}

TEST_F(ProfiledPixel, GpuBoostShowsInInterferenceTable)
{
    // The Mali governor boosts under CPU load: the interference-heavy
    // entries on the GPU must be faster than isolated ones for
    // compute-bound stages (conv2 is compute bound on the GPU; conv1
    // is launch/memory dominated).
    const int gpu = soc.findPu("gpu");
    EXPECT_LT(result.interference.at(2, gpu),
              result.isolated.at(2, gpu));
}

TEST_F(ProfiledPixel, CpuSlowdownShowsInInterferenceTable)
{
    const int big = soc.findPu("big");
    EXPECT_GT(result.interference.at(0, big),
              result.isolated.at(0, big));
}

TEST_F(ProfiledPixel, ProfilingIsDeterministic)
{
    Profiler profiler(*model);
    const ProfileResult again = profiler.profile(*app);
    for (int s = 0; s < result.isolated.numStages(); ++s)
        for (int p = 0; p < result.isolated.numPus(); ++p)
            EXPECT_DOUBLE_EQ(again.isolated.at(s, p),
                             result.isolated.at(s, p));
}

TEST_F(ProfiledPixel, ProfilingCostAccumulates)
{
    EXPECT_GT(result.profilingCostSeconds, 0.0);
}

TEST_F(ProfiledPixel, MoreRepsTightenNothingButStillPositive)
{
    Profiler profiler(*model, ProfilerConfig{.repetitions = 5});
    const ProfileResult quick = profiler.profile(*app);
    for (int s = 0; s < quick.isolated.numStages(); ++s)
        for (int p = 0; p < quick.isolated.numPus(); ++p)
            EXPECT_GT(quick.isolated.at(s, p), 0.0);
}

TEST_F(ProfiledPixel, SolverAndExhaustiveAgreeOnRanking)
{
    PlannerSpec solver_cfg;
    solver_cfg.engine = PlannerEngine::Solver;
    PlannerSpec brute_cfg = solver_cfg;
    brute_cfg.engine = PlannerEngine::Exhaustive;

    Optimizer with_solver(soc, result.interference, solver_cfg);
    Optimizer with_brute(soc, result.interference, brute_cfg);
    const auto a = with_solver.optimize();
    const auto b = with_brute.optimize();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].predictedLatency, b[i].predictedLatency,
                    1e-12)
            << "rank " << i;
    }
    EXPECT_NEAR(with_solver.stats().minimalGapness,
                with_brute.stats().minimalGapness, 1e-12);
}

TEST_F(ProfiledPixel, CandidatesAreDistinctSchedules)
{
    Optimizer opt(soc, result.interference);
    const auto cands = opt.optimize();
    EXPECT_EQ(cands.size(), 20u);
    std::set<std::string> seen;
    for (const auto& c : cands)
        EXPECT_TRUE(seen.insert(c.schedule.compactString()).second);
}

TEST_F(ProfiledPixel, CandidatesSortedByLatencyWithinFeasibleClass)
{
    Optimizer opt(soc, result.interference);
    const auto cands = opt.optimize();
    const auto& st = opt.stats();
    auto fully_feasible = [&](const Candidate& c) {
        return c.predictedLatency <= st.latencyBound + 1e-12
            && c.schedule.numChunks() >= st.requiredPus
            && c.predictedGapness <= st.gapnessBound + 1e-12;
    };
    // Within the fully feasible prefix, latency is non-decreasing, and
    // no infeasible candidate precedes a feasible one.
    bool left_class = false;
    double prev = -1.0;
    for (const auto& c : cands) {
        if (fully_feasible(c)) {
            EXPECT_FALSE(left_class)
                << "feasible candidate after infeasible one";
            EXPECT_GE(c.predictedLatency, prev);
            prev = c.predictedLatency;
        } else {
            left_class = true;
        }
    }
    EXPECT_GT(st.candidatesWithinBound, 0);
}

TEST_F(ProfiledPixel, UtilizationFilterMaximizesPuCountUnderBound)
{
    Optimizer opt(soc, result.interference);
    const auto cands = opt.optimize();
    const auto& st = opt.stats();

    // The feasibility class: within the latency bound and using the
    // highest attainable PU-class count.
    EXPECT_GE(st.requiredPus, 1);
    EXPECT_LE(st.requiredPus, soc.numPus());
    EXPECT_GE(st.latencyBound, st.unrestrictedLatency);

    // The top candidate must sit inside the class.
    EXPECT_LE(cands.front().predictedLatency,
              st.latencyBound + 1e-12);
    EXPECT_GE(cands.front().schedule.numChunks(), st.requiredPus);

    // No schedule with MORE distinct PUs fits the latency bound
    // (otherwise requiredPus was not maximal).
    for (const auto& s :
         enumerateSchedules(result.interference.numStages(),
                            soc.numPus())) {
        if (s.numChunks() > st.requiredPus)
            EXPECT_GT(s.bottleneckTime(result.interference),
                      st.latencyBound - 1e-12);
    }
}

TEST_F(ProfiledPixel, LatencyOnlyModeFindsGlobalLatencyOptimum)
{
    PlannerSpec cfg;
    cfg.utilizationFilter = false;
    cfg.engine = PlannerEngine::Exhaustive;
    Optimizer opt(soc, result.interference, cfg);
    const auto cands = opt.optimize();

    // The first candidate must equal the brute-force latency optimum
    // over the whole schedule space.
    const auto all = enumerateSchedules(app->numStages(), soc.numPus());
    double best = 1e300;
    for (const auto& s : all)
        best = std::min(best, s.bottleneckTime(result.interference));
    EXPECT_NEAR(cands.front().predictedLatency, best, 1e-12);
}

TEST_F(ProfiledPixel, GapnessFilterNeverWorsensBeyondSlack)
{
    Optimizer opt(soc, result.interference);
    const auto cands = opt.optimize();
    const auto& st = opt.stats();
    EXPECT_GT(st.candidatesWithinBound, 0);
    EXPECT_GE(st.gapnessBound, st.minimalGapness);
    // The level-1 optimum must itself be attainable.
    bool found_min = false;
    for (const auto& c : cands)
        found_min = found_min
            || c.predictedGapness <= st.gapnessBound + 1e-12;
    EXPECT_TRUE(found_min);
}

TEST_F(ProfiledPixel, PipelineSchedulesBeatHomogeneousPrediction)
{
    Optimizer opt(soc, result.interference);
    const auto cands = opt.optimize();
    // Predicted bottleneck of the best pipeline must beat every
    // homogeneous schedule's predicted latency (this is the whole
    // point of pipelining).
    for (int p = 0; p < soc.numPus(); ++p) {
        const auto homog
            = Schedule::homogeneous(app->numStages(), p);
        EXPECT_LT(cands.front().predictedLatency,
                  homog.bottleneckTime(result.interference));
    }
}

TEST_F(ProfiledPixel, SolverStatsPopulated)
{
    Optimizer opt(soc, result.interference);
    opt.optimize();
    EXPECT_GT(opt.stats().solverNodes, 0u);
}

class ScheduleModelCounts
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(ScheduleModelCounts, SolverEncodingCountsMatchEnumeration)
{
    // The C1+C2 solver encoding must admit exactly the schedules the
    // combinatorial enumerator produces.
    const auto [stages, pus] = GetParam();
    solver::Model model;
    std::vector<std::vector<solver::Var>> x(
        static_cast<std::size_t>(stages));
    for (int i = 0; i < stages; ++i) {
        for (int c = 0; c < pus; ++c)
            x[static_cast<std::size_t>(i)].push_back(model.newVar());
        model.addExactlyOne(x[static_cast<std::size_t>(i)]);
    }
    for (int c = 0; c < pus; ++c)
        for (int i = 0; i < stages; ++i)
            for (int k = i + 2; k < stages; ++k)
                for (int j = i + 1; j < k; ++j)
                    model.addImplication(
                        {solver::pos(x[static_cast<std::size_t>(i)]
                                      [static_cast<std::size_t>(c)]),
                         solver::pos(x[static_cast<std::size_t>(k)]
                                      [static_cast<std::size_t>(c)])},
                        solver::pos(x[static_cast<std::size_t>(j)]
                                     [static_cast<std::size_t>(c)]));
    solver::Solver s(model);
    EXPECT_EQ(s.countSolutions(), countSchedules(stages, pus));
}

INSTANTIATE_TEST_SUITE_P(Spaces, ScheduleModelCounts,
                         ::testing::Values(std::pair{1, 1},
                                           std::pair{3, 2},
                                           std::pair{5, 3},
                                           std::pair{7, 4},
                                           std::pair{9, 4}));

TEST(Optimizer, FewerStagesThanPusStillSolves)
{
    const auto soc = platform::pixel7a(); // 4 PUs
    ProfilingTable table({"a", "b"}, {"little", "mid", "big", "gpu"});
    for (int s = 0; s < 2; ++s)
        for (int p = 0; p < 4; ++p)
            table.set(s, p, 1.0 + s + p);
    Optimizer opt(soc, table);
    const auto cands = opt.optimize();
    EXPECT_FALSE(cands.empty());
    for (const auto& c : cands)
        EXPECT_TRUE(c.schedule.valid(2, 4));
}

TEST(Optimizer, SingleStageSinglePu)
{
    platform::SocDescription soc = platform::jetsonOrinNano();
    ProfilingTable table({"only"}, {"cpu", "gpu"});
    table.set(0, 0, 2.0);
    table.set(0, 1, 1.0);
    Optimizer opt(soc, table);
    const auto cands = opt.optimize();
    ASSERT_FALSE(cands.empty());
    // Best single-stage schedule picks the faster PU.
    EXPECT_EQ(cands.front().schedule.puOfStage(0), 1);
}

TEST(Optimizer, CandidateCountRespectsK)
{
    const auto soc = platform::jetsonOrinNano();
    ProfilingTable table({"a", "b", "c"}, {"cpu", "gpu"});
    for (int s = 0; s < 3; ++s)
        for (int p = 0; p < 2; ++p)
            table.set(s, p, 1.0 + s * 0.5 + p * 0.25);
    PlannerSpec cfg;
    cfg.numCandidates = 5;
    Optimizer opt(soc, table, cfg);
    EXPECT_LE(opt.optimize().size(), 5u);
}

TEST(Optimizer, ExhaustsSpaceWhenKExceedsIt)
{
    const auto soc = platform::jetsonOrinNano(); // 2 PUs
    ProfilingTable table({"a", "b"}, {"cpu", "gpu"});
    for (int s = 0; s < 2; ++s)
        for (int p = 0; p < 2; ++p)
            table.set(s, p, 1.0 + s + p);
    PlannerSpec cfg;
    cfg.numCandidates = 50;
    cfg.utilizationFilter = false;
    Optimizer opt(soc, table, cfg);
    // 2 stages, 2 PUs: 2 single-chunk + 2 two-chunk = 4 schedules.
    EXPECT_EQ(opt.optimize().size(), 4u);
}

TEST_F(ProfiledPixel, EvaluatorChunkTimesBitIdenticalToRangeTime)
{
    const auto& table = result.interference;
    ScheduleEvaluator eval(soc, table, *model);
    for (int first = 0; first < table.numStages(); ++first)
        for (int last = first; last < table.numStages(); ++last)
            for (int p = 0; p < table.numPus(); ++p)
                EXPECT_EQ(eval.chunkTime(first, last, p),
                          table.rangeTime(first, last, p))
                    << "chunk [" << first << ", " << last << "] on "
                    << p;
}

TEST_F(ProfiledPixel, EvaluatorBitIdenticalOverAllSchedules)
{
    const auto& table = result.interference;
    ScheduleEvaluator eval(soc, table, *model);
    const auto all
        = enumerateSchedules(app->numStages(), soc.numPus());
    for (const auto& s : all) {
        const Prediction& p = eval.predict(s);
        EXPECT_EQ(p.latency, s.bottleneckTime(table));
        EXPECT_EQ(p.gapness, s.gapness(table));
        EXPECT_EQ(p.numChunks, s.numChunks());
    }
    // Every schedule again: all hits this time.
    const auto misses = eval.stats().misses;
    for (const auto& s : all)
        eval.predict(s);
    EXPECT_EQ(eval.stats().misses, misses);
    EXPECT_GE(eval.stats().hits, all.size());
}

/** Memoized and from-scratch planning must agree bit-for-bit: same
 *  candidates, same predicted numbers, same stats. */
void
expectSamePlan(const platform::SocDescription& soc,
               const ProfilingTable& table, PlannerSpec cfg)
{
    cfg.memoize = true;
    Optimizer memo(soc, table, cfg);
    cfg.memoize = false;
    Optimizer scratch(soc, table, cfg);

    const auto a = memo.optimize();
    const auto b = scratch.optimize();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].schedule.toAssignment(),
                  b[i].schedule.toAssignment());
        EXPECT_EQ(a[i].predictedLatency, b[i].predictedLatency);
        EXPECT_EQ(a[i].predictedGapness, b[i].predictedGapness);
        EXPECT_EQ(a[i].predictedEnergyJ, b[i].predictedEnergyJ);
    }
    EXPECT_EQ(memo.stats().unrestrictedLatency,
              scratch.stats().unrestrictedLatency);
    EXPECT_EQ(memo.stats().latencyBound, scratch.stats().latencyBound);
    EXPECT_EQ(memo.stats().requiredPus, scratch.stats().requiredPus);
    EXPECT_EQ(memo.stats().minimalGapness,
              scratch.stats().minimalGapness);
    EXPECT_EQ(memo.stats().gapnessBound, scratch.stats().gapnessBound);
    // The memoized solver path harvests the space in a single DPLL
    // sweep and replays the level logic over the harvested array, so
    // it can only explore fewer nodes than the multi-pass path.
    EXPECT_LE(memo.stats().solverNodes, scratch.stats().solverNodes);
    EXPECT_EQ(memo.stats().candidatesWithinBound,
              scratch.stats().candidatesWithinBound);
    // The memoized run went through the evaluator (each enumerated
    // schedule predicted once - a miss; candidate construction then
    // re-reads the winners - hits).
    EXPECT_GT(memo.stats().evalHits + memo.stats().evalMisses, 0u);
    EXPECT_EQ(scratch.stats().evalHits + scratch.stats().evalMisses,
              0u);
}

TEST_F(ProfiledPixel, MemoizedExhaustivePlanBitIdentical)
{
    PlannerSpec cfg;
    cfg.engine = PlannerEngine::Exhaustive;
    expectSamePlan(soc, result.interference, cfg);
}

TEST_F(ProfiledPixel, MemoizedSolverPlanBitIdentical)
{
    PlannerSpec cfg;
    cfg.engine = PlannerEngine::Solver;
    expectSamePlan(soc, result.interference, cfg);

    // The solver's minimize calls revisit assignments, so the keyed
    // cache must be doing real work on this path.
    Optimizer memo(soc, result.interference, cfg);
    memo.optimize();
    EXPECT_GT(memo.stats().evalHits, 0u);
}

TEST_F(ProfiledPixel, MemoizedEnergyDelayPlanBitIdentical)
{
    PlannerSpec cfg;
    cfg.engine = PlannerEngine::Exhaustive;
    cfg.objective = PlannerSpec::Objective::EnergyDelay;
    expectSamePlan(soc, result.interference, cfg);
}

TEST_F(ProfiledPixel, MemoizedReplanShapeBitIdentical)
{
    // The graceful-degradation configuration: one candidate on a
    // restricted PU set.
    PlannerSpec cfg;
    cfg.engine = PlannerEngine::Exhaustive;
    cfg.numCandidates = 1;
    cfg.allowedPus = {0, 1, 2};
    expectSamePlan(soc, result.interference, cfg);
}

TEST_F(ProfiledPixel, SharedEvaluatorServesSecondOptimizerFromCache)
{
    const auto& table = result.interference;
    ScheduleEvaluator eval(soc, table, *model);
    PlannerSpec cfg;
    cfg.engine = PlannerEngine::Exhaustive;
    cfg.numCandidates = 1;
    cfg.sharedEvaluator = &eval;

    Optimizer first(soc, table, cfg);
    const auto plan_a = first.optimize();
    const auto misses_after_first = eval.stats().misses;

    cfg.allowedPus = {0, 1, 2}; // a replan against the same table
    Optimizer second(soc, table, cfg);
    const auto plan_b = second.optimize();
    // Nothing new to predict: the first pass scored the full space.
    EXPECT_EQ(eval.stats().misses, misses_after_first);
    ASSERT_FALSE(plan_b.empty());
    for (const auto& chunk : plan_b.front().schedule.chunks())
        EXPECT_LE(chunk.pu, 2);
    (void)plan_a;
}

} // namespace
} // namespace bt::core
