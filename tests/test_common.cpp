/**
 * @file
 * Unit tests for the common utilities: RNG determinism and
 * distributions, statistics (summary, geomean, Pearson, Spearman),
 * table rendering, CSV quoting, and FlagSet parsing edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace bt {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextBoundedRespectsBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, NextBoundedCoversAllResidues)
{
    Rng rng(11);
    std::array<int, 5> seen{};
    for (int i = 0; i < 2000; ++i)
        ++seen[rng.nextBounded(5)];
    for (int count : seen)
        EXPECT_GT(count, 0);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sumsq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalFactorCentersNearOne)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextLogNormalFactor(0.02);
    // E[exp(sigma N)] = exp(sigma^2/2) ~ 1.0002 for sigma = 0.02.
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, HashCombineMixes)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_NE(hashCombine(0, 0), 0u);
    EXPECT_NE(hashCombine(1, 2), hashCombine(1, 3));
}

TEST(Stats, SummaryBasics)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmptyAndSingle)
{
    EXPECT_EQ(summarize({}).count, 0u);
    const std::vector<double> one{42.0};
    const Summary s = summarize(one);
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, GeomeanKnownValues)
{
    const std::vector<double> xs{1.0, 4.0};
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
    const std::vector<double> ys{2.0, 2.0, 2.0};
    EXPECT_NEAR(geomean(ys), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, PearsonPerfectAndInverse)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    const std::vector<double> zs{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonNoVarianceIsZero)
{
    const std::vector<double> xs{1, 2, 3};
    const std::vector<double> flat{5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
    EXPECT_DOUBLE_EQ(pearson(flat, xs), 0.0);
}

TEST(Stats, PearsonKnownValue)
{
    // Hand-computed small example.
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{1, 3, 2, 5};
    // sxy = 5.5, sxx = 5, syy = 8.75 -> r = 5.5 / sqrt(43.75).
    const double r = pearson(xs, ys);
    EXPECT_NEAR(r, 5.5 / std::sqrt(43.75), 1e-12);
}

TEST(Stats, RanksWithTies)
{
    const std::vector<double> xs{10.0, 20.0, 20.0, 5.0};
    const auto r = ranks(xs);
    EXPECT_DOUBLE_EQ(r[3], 1.0);
    EXPECT_DOUBLE_EQ(r[0], 2.0);
    EXPECT_DOUBLE_EQ(r[1], 3.5);
    EXPECT_DOUBLE_EQ(r[2], 3.5);
}

TEST(Stats, SpearmanMonotoneNonlinear)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{1, 8, 27, 64, 125}; // monotone
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "2.5"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Header line padded to the widest cell.
    EXPECT_NE(out.find("name         value"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::num(2.5, 3), "2.500");
}

TEST(Csv, WritesQuotedCells)
{
    const std::string path = "/tmp/bt_test_csv.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        ASSERT_TRUE(csv.ok());
        csv.addRow({"plain", "has,comma"});
        csv.addRow({"has\"quote", "line\nbreak"});
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    EXPECT_NE(text.find("a,b"), std::string::npos);
    EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// FlagSet edge cases.

/** argv adapter: FlagSet::parse wants mutable char** like main's. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings_(std::move(args))
    {
        for (auto& s : strings_)
            ptrs_.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs_.size()); }
    char** argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char*> ptrs_;
};

TEST(Flags, ParsesSwitchesAndValues)
{
    bool sw = false;
    std::string name = "default";
    int k = 0;
    double f = 0.0;
    FlagSet flags("prog");
    flags.flag("--switch", &sw, "a switch");
    flags.value("--name", &name, "NAME", "a string");
    flags.value("--k", &k, "K", "an int");
    flags.value("--f", &f, "F", "a double");

    Argv argv({"prog", "--switch", "--name", "x", "--k", "7", "--f",
               "0.5"});
    EXPECT_TRUE(flags.parse(argv.argc(), argv.argv()));
    EXPECT_TRUE(sw);
    EXPECT_EQ(name, "x");
    EXPECT_EQ(k, 7);
    EXPECT_DOUBLE_EQ(f, 0.5);
}

TEST(Flags, UnknownFlagFails)
{
    bool sw = false;
    FlagSet flags("prog");
    flags.flag("--known", &sw, "known");
    Argv argv({"prog", "--unknown"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, MissingValueAtEndOfLineFails)
{
    std::string name;
    FlagSet flags("prog");
    flags.value("--name", &name, "NAME", "a string");
    Argv argv({"prog", "--name"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, MalformedNumberFails)
{
    int k = 0;
    FlagSet flags("prog");
    flags.value("--k", &k, "K", "an int");
    Argv bad({"prog", "--k", "12x"});
    EXPECT_FALSE(flags.parse(bad.argc(), bad.argv()));
    Argv empty({"prog", "--k", ""});
    EXPECT_FALSE(flags.parse(empty.argc(), empty.argv()));
}

TEST(Flags, HelpReturnsFalse)
{
    FlagSet flags("prog");
    Argv argv({"prog", "--help"});
    EXPECT_FALSE(flags.parse(argv.argc(), argv.argv()));
}

TEST(Flags, DuplicateRegistrationPanics)
{
    FlagSet flags("prog");
    bool a = false;
    bool b = false;
    flags.flag("--twice", &a, "first registration");
    EXPECT_DEATH_IF_SUPPORTED(
        flags.flag("--twice", &b, "second registration"),
        "duplicate flag registration");
}

TEST(Flags, SwitchAndValueCombineLikeCheckPlusJson)
{
    // bt_explorer composes `--check` (a switch) with `--json FILE` (a
    // value); both must land regardless of order.
    for (const bool check_first : {true, false}) {
        bool check = false;
        std::string json_file;
        FlagSet flags("bt_explorer");
        flags.flag("--check", &check, "run the checker");
        flags.value("--json", &json_file, "FILE", "report file");
        Argv argv(check_first
                      ? std::vector<std::string>{"bt_explorer",
                                                 "--check", "--json",
                                                 "out.json"}
                      : std::vector<std::string>{"bt_explorer",
                                                 "--json", "out.json",
                                                 "--check"});
        EXPECT_TRUE(flags.parse(argv.argc(), argv.argv()));
        EXPECT_TRUE(check);
        EXPECT_EQ(json_file, "out.json");
    }
}

} // namespace
} // namespace bt
