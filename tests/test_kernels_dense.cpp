/**
 * @file
 * Unit tests for the CNN kernels: dense conv / pooling / linear against
 * references and across backends, CSR construction and pruning
 * invariants, and sparse-vs-dense convolution equivalence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/csr.hpp"
#include "kernels/linear.hpp"
#include "kernels/pooling.hpp"
#include "kernels/sparse_conv.hpp"
#include "sched/thread_pool.hpp"

namespace bt::kernels {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed, double lo = -1.0,
          double hi = 1.0)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.nextRange(lo, hi));
    return v;
}

void
expectNearVec(std::span<const float> a, std::span<const float> b,
              float tol = 1e-4f)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
}

struct ConvCase
{
    int inC, size, outC;
};

class ConvShapes : public ::testing::TestWithParam<ConvCase>
{
  protected:
    ConvShape
    shape() const
    {
        const auto p = GetParam();
        return ConvShape{Shape3{p.inC, p.size, p.size}, p.outC};
    }
};

TEST_P(ConvShapes, CpuMatchesReference)
{
    const ConvShape s = shape();
    const auto in = randomVec(static_cast<std::size_t>(s.in.elems()),
                              1);
    const auto w = randomVec(static_cast<std::size_t>(s.weightElems()),
                             2);
    const auto b = randomVec(static_cast<std::size_t>(s.outC), 3);
    std::vector<float> want(static_cast<std::size_t>(s.out().elems()));
    std::vector<float> got(want.size());

    conv2dReference(s, in, w, b, want);
    sched::ThreadPool pool(3);
    conv2dCpu(CpuExec{&pool}, s, in, w, b, got);
    expectNearVec(got, want);
}

TEST_P(ConvShapes, GpuMatchesReference)
{
    const ConvShape s = shape();
    const auto in = randomVec(static_cast<std::size_t>(s.in.elems()),
                              4);
    const auto w = randomVec(static_cast<std::size_t>(s.weightElems()),
                             5);
    const auto b = randomVec(static_cast<std::size_t>(s.outC), 6);
    std::vector<float> want(static_cast<std::size_t>(s.out().elems()));
    std::vector<float> got(want.size());

    conv2dReference(s, in, w, b, want);
    conv2dGpu(GpuExec{}, s, in, w, b, got);
    expectNearVec(got, want);
}

TEST_P(ConvShapes, OutputIsReluClamped)
{
    const ConvShape s = shape();
    const auto in = randomVec(static_cast<std::size_t>(s.in.elems()),
                              7);
    const auto w = randomVec(static_cast<std::size_t>(s.weightElems()),
                             8);
    const auto b = randomVec(static_cast<std::size_t>(s.outC), 9);
    std::vector<float> out(static_cast<std::size_t>(s.out().elems()));
    conv2dReference(s, in, w, b, out);
    for (float v : out)
        EXPECT_GE(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapes,
    ::testing::Values(ConvCase{1, 4, 1}, ConvCase{3, 8, 4},
                      ConvCase{4, 6, 8}, ConvCase{3, 32, 16}));

TEST(Conv2d, ZeroPaddingBehaviour)
{
    // All-ones input and a single-weight kernel centered at (1,1):
    // interior outputs see the full value; corners see it too (only
    // the center tap is nonzero).
    const ConvShape s{Shape3{1, 4, 4}, 1};
    std::vector<float> in(16, 1.0f);
    std::vector<float> w(9, 0.0f);
    w[4] = 2.0f; // center tap
    std::vector<float> b{0.0f};
    std::vector<float> out(16);
    conv2dReference(s, in, w, b, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 2.0f);

    // Corner tap: outputs at the far corner lose it to padding.
    std::fill(w.begin(), w.end(), 0.0f);
    w[0] = 1.0f; // (ky=0, kx=0) reads (y-1, x-1)
    conv2dReference(s, in, w, b, out);
    EXPECT_FLOAT_EQ(out[0], 0.0f);  // (0,0) reads (-1,-1) -> padding
    EXPECT_FLOAT_EQ(out[5], 1.0f);  // interior
}

TEST(Maxpool, ReferenceAndBackendsAgree)
{
    const Shape3 in_shape{3, 8, 8};
    const auto in = randomVec(static_cast<std::size_t>(
        in_shape.elems()), 10);
    const auto out_elems = static_cast<std::size_t>(
        pooledShape(in_shape).elems());
    std::vector<float> want(out_elems), cpu(out_elems), gpu(out_elems);
    maxpoolReference(in_shape, in, want);
    sched::ThreadPool pool(2);
    maxpoolCpu(CpuExec{&pool}, in_shape, in, cpu);
    maxpoolGpu(GpuExec{}, in_shape, in, gpu);
    expectNearVec(cpu, want, 0.0f);
    expectNearVec(gpu, want, 0.0f);
}

TEST(Maxpool, PicksWindowMaximum)
{
    const Shape3 in_shape{1, 2, 2};
    std::vector<float> in{1.0f, 7.0f, -3.0f, 2.0f};
    std::vector<float> out(1);
    maxpoolReference(in_shape, in, out);
    EXPECT_FLOAT_EQ(out[0], 7.0f);
}

TEST(Maxpool, OddSizesFloorDivision)
{
    const Shape3 in_shape{1, 5, 5};
    EXPECT_EQ(pooledShape(in_shape).h, 2);
    EXPECT_EQ(pooledShape(in_shape).w, 2);
}

TEST(Linear, MatchesManualDot)
{
    const int in_f = 3, out_f = 2;
    std::vector<float> in{1.0f, 2.0f, 3.0f};
    std::vector<float> w{1.0f, 0.0f, 0.0f, /* row 0 */
                         0.5f, 0.5f, 0.5f /* row 1 */};
    std::vector<float> b{10.0f, -1.0f};
    std::vector<float> out(2);
    linearReference(in_f, out_f, in, w, b, out);
    EXPECT_FLOAT_EQ(out[0], 11.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST(Linear, BackendsMatchReference)
{
    const int in_f = 128, out_f = 10;
    const auto in = randomVec(in_f, 11);
    const auto w = randomVec(static_cast<std::size_t>(in_f) * out_f,
                             12);
    const auto b = randomVec(out_f, 13);
    std::vector<float> want(out_f), cpu(out_f), gpu(out_f);
    linearReference(in_f, out_f, in, w, b, want);
    sched::ThreadPool pool(2);
    linearCpu(CpuExec{&pool}, in_f, out_f, in, w, b, cpu);
    linearGpu(GpuExec{}, in_f, out_f, in, w, b, gpu);
    expectNearVec(cpu, want);
    expectNearVec(gpu, want);
}

class CsrDensities : public ::testing::TestWithParam<double>
{
};

TEST_P(CsrDensities, PruneHitsTargetDensity)
{
    const int rows = 32, cols = 45;
    const auto dense = randomVec(static_cast<std::size_t>(rows) * cols,
                                 14);
    const CsrMatrix m = pruneToCsr(dense, rows, cols, GetParam());
    EXPECT_TRUE(m.wellFormed());
    EXPECT_NEAR(m.density(), GetParam(), 1.0 / (rows * cols) + 1e-9);
}

TEST_P(CsrDensities, PruneKeepsLargestMagnitudes)
{
    const int rows = 16, cols = 16;
    const auto dense = randomVec(static_cast<std::size_t>(rows) * cols,
                                 15);
    const CsrMatrix m = pruneToCsr(dense, rows, cols, GetParam());
    // The smallest kept magnitude must be >= the largest dropped one.
    const auto back = csrToDense(m);
    float min_kept = 1e30f, max_dropped = 0.0f;
    for (std::size_t i = 0; i < dense.size(); ++i) {
        const float mag = std::fabs(dense[i]);
        if (back[i] != 0.0f)
            min_kept = std::min(min_kept, mag);
        else
            max_dropped = std::max(max_dropped, mag);
    }
    EXPECT_GE(min_kept, max_dropped);
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrDensities,
                         ::testing::Values(0.01, 0.05, 0.25, 1.0));

TEST(Csr, RoundTripThroughDense)
{
    const int rows = 8, cols = 12;
    auto dense = randomVec(static_cast<std::size_t>(rows) * cols, 16);
    // Zero out some entries to create structure.
    for (std::size_t i = 0; i < dense.size(); i += 3)
        dense[i] = 0.0f;
    const CsrMatrix m = pruneToCsr(dense, rows, cols, 1.0);
    EXPECT_TRUE(m.wellFormed());
    // Full density keeps everything nonzero... pruning with target 1.0
    // keeps |dense| entries incl. zeros at threshold; round trip must
    // preserve all nonzeros.
    const auto back = csrToDense(m);
    for (std::size_t i = 0; i < dense.size(); ++i)
        if (dense[i] != 0.0f)
            EXPECT_FLOAT_EQ(back[i], dense[i]);
}

TEST(SparseConv, MatchesDenseWhenUnpruned)
{
    const ConvShape s{Shape3{3, 8, 8}, 5};
    const auto in = randomVec(static_cast<std::size_t>(s.in.elems()),
                              17);
    const auto w = randomVec(static_cast<std::size_t>(s.weightElems()),
                             18);
    const auto b = randomVec(static_cast<std::size_t>(s.outC), 19);
    const CsrMatrix csr = pruneToCsr(w, s.outC, s.in.c * 9, 1.0);

    std::vector<float> dense_out(static_cast<std::size_t>(
        s.out().elems()));
    std::vector<float> sparse_out(dense_out.size());
    conv2dReference(s, in, w, b, dense_out);
    sparseConvReference(s, in, csr, b, sparse_out);
    expectNearVec(sparse_out, dense_out, 1e-3f);
}

TEST(SparseConv, BackendsAgreeOnPrunedWeights)
{
    const ConvShape s{Shape3{4, 10, 10}, 6};
    const auto in = randomVec(static_cast<std::size_t>(s.in.elems()),
                              20);
    const auto w = randomVec(static_cast<std::size_t>(s.weightElems()),
                             21);
    const auto b = randomVec(static_cast<std::size_t>(s.outC), 22);
    const CsrMatrix csr = pruneToCsr(w, s.outC, s.in.c * 9, 0.1);

    std::vector<float> want(static_cast<std::size_t>(s.out().elems()));
    std::vector<float> cpu(want.size()), gpu(want.size());
    sparseConvReference(s, in, csr, b, want);
    sched::ThreadPool pool(3);
    sparseConvCpu(CpuExec{&pool}, s, in, csr, b, cpu);
    sparseConvGpu(GpuExec{}, s, in, csr, b, gpu);
    expectNearVec(cpu, want, 0.0f);
    expectNearVec(gpu, want, 0.0f);
}

TEST(SparseConv, PrunedMatchesManuallyZeroedDense)
{
    const ConvShape s{Shape3{2, 6, 6}, 3};
    const auto in = randomVec(static_cast<std::size_t>(s.in.elems()),
                              23);
    const auto w = randomVec(static_cast<std::size_t>(s.weightElems()),
                             24);
    const auto b = randomVec(static_cast<std::size_t>(s.outC), 25);
    const CsrMatrix csr = pruneToCsr(w, s.outC, s.in.c * 9, 0.3);
    const auto pruned_dense = csrToDense(csr);

    std::vector<float> want(static_cast<std::size_t>(s.out().elems()));
    std::vector<float> got(want.size());
    conv2dReference(s, in, pruned_dense, b, want);
    sparseConvReference(s, in, csr, b, got);
    expectNearVec(got, want, 1e-4f);
}

} // namespace
} // namespace bt::kernels
