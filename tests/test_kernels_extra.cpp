/**
 * @file
 * Tests for the additional kernels: the GEMM convolution backend
 * (im2col, gemm, full lowering vs the direct reference) and the octree
 * query index (cell lookup, point containment, level statistics).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/gemm_conv.hpp"
#include "kernels/morton.hpp"
#include "kernels/octree.hpp"
#include "kernels/octree_query.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/radix_tree.hpp"
#include "sched/thread_pool.hpp"

namespace bt::kernels {
namespace {

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.nextRange(-1.0, 1.0));
    return v;
}

TEST(Im2col, IdentityKernelColumnLayout)
{
    // One channel, 3x3 image: row (ky=1, kx=1) must reproduce the
    // image itself (center tap, no padding involved).
    const Shape3 in_shape{1, 3, 3};
    std::vector<float> in(9);
    for (std::size_t i = 0; i < 9; ++i)
        in[i] = static_cast<float>(i + 1);
    std::vector<float> cols(9u * 9u, -1.0f);
    im2col(CpuExec{nullptr}, in_shape, in, cols);

    const std::size_t center_row = 4; // ic=0, ky=1, kx=1
    for (std::size_t px = 0; px < 9; ++px)
        EXPECT_FLOAT_EQ(cols[center_row * 9 + px], in[px]);

    // Top-left tap (ky=0, kx=0) of the first pixel reads padding.
    EXPECT_FLOAT_EQ(cols[0], 0.0f);
}

TEST(Gemm, SmallKnownProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    const std::vector<float> a{1, 2, 3, 4};
    const std::vector<float> b{5, 6, 7, 8};
    std::vector<float> c(4);
    gemmCpu(CpuExec{nullptr}, 2, 2, 2, a, b, c);
    EXPECT_FLOAT_EQ(c[0], 19.0f);
    EXPECT_FLOAT_EQ(c[1], 22.0f);
    EXPECT_FLOAT_EQ(c[2], 43.0f);
    EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Gemm, MatchesNaiveOnRandomMatrices)
{
    const int m = 17, n = 23, k = 31;
    const auto a = randomVec(static_cast<std::size_t>(m * k), 1);
    const auto b = randomVec(static_cast<std::size_t>(k * n), 2);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    sched::ThreadPool pool(3);
    gemmCpu(CpuExec{&pool}, m, n, k, a, b, c);

    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            float want = 0.0f;
            for (int kk = 0; kk < k; ++kk)
                want += a[static_cast<std::size_t>(i * k + kk)]
                    * b[static_cast<std::size_t>(kk * n + j)];
            ASSERT_NEAR(c[static_cast<std::size_t>(i * n + j)], want,
                        1e-4f);
        }
    }
}

class GemmConvShapes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GemmConvShapes, MatchesDirectConvolution)
{
    const auto [in_c, size] = GetParam();
    const ConvShape shape{Shape3{in_c, size, size}, in_c * 2};
    const auto in = randomVec(static_cast<std::size_t>(
        shape.in.elems()), 3);
    const auto w = randomVec(static_cast<std::size_t>(
        shape.weightElems()), 4);
    const auto b = randomVec(static_cast<std::size_t>(shape.outC), 5);

    std::vector<float> want(static_cast<std::size_t>(
        shape.out().elems()));
    conv2dReference(shape, in, w, b, want);

    std::vector<float> cols(static_cast<std::size_t>(shape.in.c) * 9
                            * static_cast<std::size_t>(shape.in.h)
                            * static_cast<std::size_t>(shape.in.w));
    std::vector<float> got(want.size());
    sched::ThreadPool pool(2);
    conv2dGemmCpu(CpuExec{&pool}, shape, in, w, b, cols, got);
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmConvShapes,
                         ::testing::Values(std::pair{1, 4},
                                           std::pair{3, 8},
                                           std::pair{8, 16}));

/** Build an octree over random unique codes; returns index + codes. */
struct BuiltOctree
{
    std::vector<std::uint32_t> codes;
    std::vector<std::int32_t> left, right, parent, leaf_parent,
        prefix_len, first, last;
    std::vector<std::uint32_t> counts, offsets;
    std::vector<std::uint32_t> prefix, child_mask;
    std::vector<std::int32_t> level, node_parent, first_code,
        code_count;
    std::int64_t num_nodes = 0;

    explicit BuiltOctree(std::int64_t n, std::uint64_t seed)
    {
        Rng rng(seed);
        codes.resize(static_cast<std::size_t>(n));
        for (auto& c : codes)
            c = static_cast<std::uint32_t>(rng.nextU64())
                & ((1u << kMortonBits) - 1);
        std::sort(codes.begin(), codes.end());
        codes.erase(std::unique(codes.begin(), codes.end()),
                    codes.end());
        const auto k = static_cast<std::int64_t>(codes.size());

        auto resize_all = [&](std::size_t sz) {
            left.resize(sz);
            right.resize(sz);
            parent.resize(sz);
            leaf_parent.resize(sz);
            prefix_len.resize(sz);
            first.resize(sz);
            last.resize(sz);
        };
        resize_all(static_cast<std::size_t>(k));
        counts.resize(static_cast<std::size_t>(2 * k));
        offsets.resize(static_cast<std::size_t>(2 * k));
        const auto max_nodes = static_cast<std::size_t>(
            maxOctreeNodes(k));
        prefix.resize(max_nodes);
        child_mask.resize(max_nodes);
        level.resize(max_nodes);
        node_parent.resize(max_nodes);
        first_code.resize(max_nodes);
        code_count.resize(max_nodes);

        const CpuExec exec{nullptr};
        buildRadixTreeCpu(exec, codes, k, treeView());
        auto counts_span = std::span<std::uint32_t>(counts).subspan(
            0, static_cast<std::size_t>(2 * k - 1));
        countOctreeNodesCpu(exec, treeView(), k, counts_span);
        const std::uint64_t total = exclusiveScanCpu(
            exec, counts_span, std::span<std::uint32_t>(offsets));
        num_nodes = buildOctreeCpu(exec, codes, k, treeView(), counts,
                                   offsets, total, view());
    }

    RadixTreeView
    treeView()
    {
        const auto k = codes.size();
        const auto internal = k > 1 ? k - 1 : 0;
        return RadixTreeView{
            std::span(left).subspan(0, internal),
            std::span(right).subspan(0, internal),
            std::span(parent).subspan(0, internal),
            std::span(leaf_parent).subspan(0, k),
            std::span(prefix_len).subspan(0, internal),
            std::span(first).subspan(0, internal),
            std::span(last).subspan(0, internal)};
    }

    OctreeView
    view()
    {
        return OctreeView{prefix, level, node_parent, child_mask,
                          first_code, code_count};
    }
};

TEST(OctreeIndex, EveryStoredCodeIsContained)
{
    BuiltOctree built(2000, 11);
    const OctreeIndex index(built.view(), built.num_nodes);
    for (auto code : built.codes)
        EXPECT_TRUE(index.contains(code));
}

TEST(OctreeIndex, MissingCodesNotContained)
{
    BuiltOctree built(500, 12);
    const OctreeIndex index(built.view(), built.num_nodes);
    Rng rng(13);
    int checked = 0;
    while (checked < 200) {
        const auto code = static_cast<std::uint32_t>(rng.nextU64())
            & ((1u << kMortonBits) - 1);
        if (std::binary_search(built.codes.begin(), built.codes.end(),
                               code))
            continue;
        EXPECT_FALSE(index.contains(code));
        ++checked;
    }
}

TEST(OctreeIndex, LocateReturnsDeepestEnclosingCell)
{
    BuiltOctree built(1000, 14);
    const OctreeIndex index(built.view(), built.num_nodes);
    for (std::size_t i = 0; i < built.codes.size(); i += 37) {
        const std::uint32_t code = built.codes[i];
        const std::int32_t node = index.locate(code);
        ASSERT_GE(node, 0);
        const auto ni = static_cast<std::size_t>(node);
        // A stored code locates to its max-depth leaf.
        EXPECT_EQ(built.level[ni], kMaxOctreeLevel);
        EXPECT_EQ(built.prefix[ni], code);
    }
}

TEST(OctreeIndex, LocateOnMissingCodeStopsAtAncestor)
{
    BuiltOctree built(64, 15);
    const OctreeIndex index(built.view(), built.num_nodes);
    Rng rng(16);
    for (int t = 0; t < 100; ++t) {
        const auto code = static_cast<std::uint32_t>(rng.nextU64())
            & ((1u << kMortonBits) - 1);
        const std::int32_t node = index.locate(code);
        ASSERT_GE(node, 0);
        const auto ni = static_cast<std::size_t>(node);
        const int level = built.level[ni];
        if (level > 0) {
            // The cell must actually contain the code's prefix.
            EXPECT_EQ(built.prefix[ni],
                      code >> (kMortonBits - 3 * level));
        }
    }
}

TEST(OctreeIndex, ContainsPointMatchesMortonPath)
{
    BuiltOctree built(300, 17);
    const OctreeIndex index(built.view(), built.num_nodes);
    // Reconstruct a point from one stored code's cell center: the
    // morton code of that point must be the code itself.
    const std::uint32_t code = built.codes.front();
    // Decode axes by collecting every 3rd bit.
    auto compact = [](std::uint32_t v, int shift) {
        std::uint32_t out = 0;
        for (int bit = 0; bit < 10; ++bit)
            out |= ((v >> (3 * bit + shift)) & 1u) << bit;
        return out;
    };
    const float x = (compact(code, 2) + 0.5f) / 1024.0f;
    const float y = (compact(code, 1) + 0.5f) / 1024.0f;
    const float z = (compact(code, 0) + 0.5f) / 1024.0f;
    ASSERT_EQ(morton32(x, y, z), code);
    EXPECT_TRUE(index.containsPoint(x, y, z));
}

TEST(OctreeIndex, LevelCountsSumToNodes)
{
    BuiltOctree built(1500, 18);
    const OctreeIndex index(built.view(), built.num_nodes);
    std::int64_t sum = 0;
    for (int level = 0; level <= kMaxOctreeLevel; ++level)
        sum += index.nodesAtLevel(level);
    EXPECT_EQ(sum, built.num_nodes);
    EXPECT_EQ(index.nodesAtLevel(0), 1);
    EXPECT_EQ(index.nodesAtLevel(kMaxOctreeLevel),
              static_cast<std::int64_t>(built.codes.size()));
}

TEST(OctreeIndex, RootCellCoversEverything)
{
    BuiltOctree built(100, 19);
    const OctreeIndex index(built.view(), built.num_nodes);
    EXPECT_EQ(index.codesInCell(0, 0),
              static_cast<std::int64_t>(built.codes.size()));
    EXPECT_EQ(index.findCell(0, 0), 0);
    EXPECT_EQ(index.findCell(-1, 0), -1);
    EXPECT_EQ(index.findCell(99, 0), -1);
}

} // namespace
} // namespace bt::kernels
