/**
 * @file
 * Unit tests for bt::check, the compute-sanitizer for the SIMT kernel
 * layer: the seeded-defect fixtures (negative control), clean runs of
 * the device collectives and whole example applications (positive
 * control), finding details (kernel name, buffer, element, thread
 * pairs), geometry lint, report JSON shape, and merge.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <span>
#include <vector>

#include "apps/app_check.hpp"
#include "check/checker.hpp"
#include "check/fixtures.hpp"
#include "common/rng.hpp"
#include "kernels/exec.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/sort.hpp"
#include "kernels/unique.hpp"
#include "simt/algorithms.hpp"
#include "simt/instrument.hpp"

namespace bt {
namespace {

// ---------------------------------------------------------------------
// Negative control: every seeded defect must be flagged.

TEST(Fixtures, AllSeededDefectsFlagged)
{
    const auto results = check::runSeededDefects();
    ASSERT_FALSE(results.empty());
    for (const auto& r : results)
        EXPECT_TRUE(r.flagged)
            << r.name << " expected "
            << check::findingKindName(r.expected) << " but got "
            << r.totalFindings << " findings of other kinds";
}

TEST(Fixtures, CoverEveryDefectCategory)
{
    const auto results = check::runSeededDefects();
    auto has = [&](check::FindingKind kind) {
        for (const auto& r : results)
            if (r.expected == kind)
                return true;
        return false;
    };
    EXPECT_TRUE(has(check::FindingKind::WriteWriteRace));
    EXPECT_TRUE(has(check::FindingKind::ReadWriteRace));
    EXPECT_TRUE(has(check::FindingKind::OobRead));
    EXPECT_TRUE(has(check::FindingKind::OobWrite));
    EXPECT_TRUE(has(check::FindingKind::UnderCoveringLaunch));
    EXPECT_TRUE(has(check::FindingKind::DeadBlocks));
    EXPECT_TRUE(has(check::FindingKind::OrderDependence));
}

// ---------------------------------------------------------------------
// Positive control: the in-tree device collectives are clean, and a
// checked run computes exactly what the raw run computes.

TEST(Checker, ScanCleanAndBitIdentical)
{
    std::vector<std::uint32_t> in(1000);
    Rng rng(42);
    for (auto& v : in)
        v = static_cast<std::uint32_t>(rng.nextBounded(100));

    std::vector<std::uint32_t> raw_out(in.size(), 0);
    const std::uint64_t raw_total = simt::deviceExclusiveScan(
        std::span<const std::uint32_t>(in), std::span(raw_out));

    std::vector<std::uint32_t> checked_out(in.size(), 0);
    check::Checker checker;
    const std::uint64_t checked_total = kernels::exclusiveScanGpu(
        in, checked_out, &checker);
    const auto report = checker.takeReport();

    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(raw_total, checked_total);
    EXPECT_EQ(raw_out, checked_out);
    EXPECT_GE(report.stats.kernels, 1);
    EXPECT_GE(report.stats.launches, 1);
    EXPECT_GT(report.stats.accesses, 0);
    // Multi-block launches get shuffled re-executions.
    EXPECT_GT(report.stats.reruns, 0);
}

TEST(Checker, InPlaceScanAliasesOntoOneRegionCleanly)
{
    std::vector<std::uint32_t> buf(500, 1);
    std::vector<std::uint32_t> expect(buf.size());
    std::iota(expect.begin(), expect.end(), 0u);

    check::Checker checker;
    {
        const simt::KernelScope scope(checker, "inplace_scan");
        auto t = simt::tracked(std::span(buf), checker, "buf");
        simt::deviceExclusiveScan(
            simt::TrackedSpan<const std::uint32_t>(t), t, checker);
    }
    const auto report = checker.takeReport();
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(buf, expect);
}

TEST(Checker, RadixSortCleanAndSorted)
{
    std::vector<std::uint32_t> keys(2000);
    Rng rng(7);
    for (auto& k : keys)
        k = static_cast<std::uint32_t>(rng.nextU64());
    std::vector<std::uint32_t> scratch(keys.size());

    check::Checker checker;
    kernels::radixSortGpu(keys, scratch, &checker);
    const auto report = checker.takeReport();

    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(Checker, UniqueCleanAndCorrect)
{
    std::vector<std::uint32_t> in = {1, 1, 2, 5, 5, 5, 9, 10, 10};
    std::vector<std::uint32_t> out(in.size(), 0);
    std::vector<std::uint32_t> flags(in.size(), 0);

    check::Checker checker;
    const std::int64_t k
        = kernels::uniqueGpu(in, out, flags, &checker);
    const auto report = checker.takeReport();

    EXPECT_TRUE(report.clean()) << report.summary();
    ASSERT_EQ(k, 5);
    EXPECT_EQ((std::vector<std::uint32_t>{out.begin(), out.begin() + 5}),
              (std::vector<std::uint32_t>{1, 2, 5, 9, 10}));
}

// ---------------------------------------------------------------------
// Finding details.

TEST(Checker, OobReadCarriesKernelBufferAndElement)
{
    constexpr std::int64_t n = 64;
    std::vector<std::uint32_t> data(n, 3);
    std::vector<std::uint32_t> out(n, 0);

    check::Checker checker;
    {
        const simt::KernelScope scope(checker, "stencil");
        auto tin = simt::tracked(
            std::span<const std::uint32_t>(data), checker, "in");
        auto tout = simt::tracked(std::span(out), checker, "result");
        kernels::GpuExec exec;
        exec.observer = &checker;
        exec.forEach(n, [&](std::int64_t i) {
            // Deliberate off-by-one: reads one past the end at i==n-1.
            tout[static_cast<std::size_t>(i)]
                = tin[static_cast<std::size_t>(i + 1)];
        });
    }
    const auto report = checker.takeReport();

    ASSERT_FALSE(report.clean());
    const auto& f = report.findings.front();
    EXPECT_EQ(f.kind, check::FindingKind::OobRead);
    EXPECT_EQ(f.kernel, "stencil");
    EXPECT_EQ(f.buffer, "in");
    EXPECT_EQ(f.element, n); // first out-of-bounds index
    EXPECT_GE(f.first.block, 0);
    // The quarantined read yielded 0, not garbage.
    EXPECT_EQ(out[static_cast<std::size_t>(n - 1)], 0u);
}

TEST(Checker, WriteWriteRaceNamesBothThreads)
{
    std::vector<std::uint32_t> out(4, 0);
    check::Checker checker;
    {
        const simt::KernelScope scope(checker, "collide");
        auto t = simt::tracked(std::span(out), checker, "out");
        simt::launchChecked(
            simt::LaunchConfig{2, 8},
            [&](const simt::WorkItem& item) {
                t[0] = static_cast<std::uint32_t>(item.globalId());
            },
            checker, 16, simt::GeometryStyle::Direct);
    }
    const auto report = checker.takeReport();

    ASSERT_FALSE(report.findings.empty());
    const auto& f = report.findings.front();
    EXPECT_EQ(f.kind, check::FindingKind::WriteWriteRace);
    EXPECT_EQ(f.buffer, "out");
    EXPECT_EQ(f.element, 0);
    // Two distinct SIMT threads are identified.
    EXPECT_TRUE(f.first.block != f.second.block
                || f.first.thread != f.second.thread);
    EXPECT_GT(f.count, 1); // folded repeats, not one finding per pair
}

TEST(Checker, UnderCoveringDirectLaunchFlagged)
{
    std::vector<std::uint32_t> out(64, 0);
    check::Checker checker;
    {
        const simt::KernelScope scope(checker, "direct");
        auto t = simt::tracked(std::span(out), checker, "out");
        // 16 threads for 64 items and no grid-stride loop.
        simt::launchChecked(
            simt::LaunchConfig{1, 16},
            [&](const simt::WorkItem& item) {
                const auto gid
                    = static_cast<std::size_t>(item.globalId());
                if (gid < 64)
                    t[gid] = 1u;
            },
            checker, 64, simt::GeometryStyle::Direct);
    }
    const auto report = checker.takeReport();
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings.front().kind,
              check::FindingKind::UnderCoveringLaunch);
}

TEST(Checker, CrossLaunchReuseIsLegal)
{
    // The same element written by different threads in *different*
    // launches is not a race: launches are device-wide barriers.
    std::vector<std::uint32_t> buf(8, 0);
    check::Checker checker;
    {
        const simt::KernelScope scope(checker, "two_launches");
        auto t = simt::tracked(std::span(buf), checker, "buf");
        kernels::GpuExec exec;
        exec.observer = &checker;
        exec.forEach(8, [&](std::int64_t i) {
            t[static_cast<std::size_t>(i)] = 1u;
        });
        exec.forEach(8, [&](std::int64_t i) {
            t[static_cast<std::size_t>(7 - i)] += 1u;
        });
    }
    const auto report = checker.takeReport();
    EXPECT_TRUE(report.clean()) << report.summary();
    for (const auto v : buf)
        EXPECT_EQ(v, 2u);
}

// ---------------------------------------------------------------------
// Whole applications, validated: every in-tree device kernel runs
// clean under the checker.

TEST(AppCheck, DenseAlexNetClean)
{
    const auto report = apps::checkScaledApp("dense");
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(report.stats.kernels, 9); // 4 conv + 4 pool + linear
}

TEST(AppCheck, SparseAlexNetClean)
{
    const auto report = apps::checkScaledApp("sparse");
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_GT(report.stats.kernels, 0);
}

TEST(AppCheck, OctreePipelineClean)
{
    // Exercises morton, radix sort, unique (in-place scan aliasing),
    // radix tree, edge counts, prefix sum, and the atomic child-mask
    // build - with the structural validator on the checked outputs.
    const auto report = apps::checkScaledApp("octree");
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(report.stats.kernels, 7);
    EXPECT_GT(report.stats.reruns, 0);
}

// ---------------------------------------------------------------------
// Report surface.

TEST(Report, JsonShape)
{
    std::vector<std::uint32_t> out(4, 0);
    check::Checker checker;
    {
        const simt::KernelScope scope(checker, "collide");
        auto t = simt::tracked(std::span(out), checker, "na\"me");
        simt::launchChecked(
            simt::LaunchConfig{2, 8},
            [&](const simt::WorkItem& item) {
                t[0] = static_cast<std::uint32_t>(item.globalId());
            },
            checker, 16, simt::GeometryStyle::Direct);
    }
    const auto report = checker.takeReport();

    std::ostringstream os;
    report.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"write_write_race\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kernel\": \"collide\""), std::string::npos);
    // The hostile buffer name is escaped, not emitted raw.
    EXPECT_NE(json.find("na\\\"me"), std::string::npos);
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"findings\""), std::string::npos);

    EXPECT_FALSE(report.summary().empty());
    EXPECT_FALSE(report.findings.front().toString().empty());
}

TEST(Report, MergeAccumulatesFindingsAndStats)
{
    check::Report a;
    a.stats.kernels = 2;
    a.stats.accesses = 100;
    a.findings.push_back({});
    check::Report b;
    b.stats.kernels = 3;
    b.stats.accesses = 50;
    b.findings.push_back({});
    b.suppressed = 1;

    a.merge(std::move(b));
    EXPECT_EQ(a.stats.kernels, 5);
    EXPECT_EQ(a.stats.accesses, 150);
    EXPECT_EQ(a.findings.size(), 2u);
    EXPECT_EQ(a.suppressed, 1);
    EXPECT_FALSE(a.clean());
}

TEST(Report, FindingKindNamesAreStable)
{
    EXPECT_EQ(check::findingKindName(
                  check::FindingKind::WriteWriteRace),
              "write_write_race");
    EXPECT_EQ(check::findingKindName(check::FindingKind::OobWrite),
              "oob_write");
    EXPECT_EQ(check::findingKindName(
                  check::FindingKind::OrderDependence),
              "order_dependence");
    EXPECT_EQ(check::findingKindName(
                  check::FindingKind::ValidationFailure),
              "validation_failure");
}

} // namespace
} // namespace bt
