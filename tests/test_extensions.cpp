/**
 * @file
 * Tests for the extension subsystems: the SoC energy model (power
 * envelopes, energy integration in the simulated executor), the
 * HEFT-style dynamic scheduling baseline, and the data-parallel
 * baseline model.
 */

#include <gtest/gtest.h>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "core/data_parallel.hpp"
#include "core/dynamic_executor.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"

namespace bt::core {
namespace {

Application
syntheticApp(int stages)
{
    Application app("Synthetic", "token", "test");
    for (int i = 0; i < stages; ++i) {
        platform::WorkProfile w;
        w.flops = 1e6 * (1 + i % 3);
        w.bytes = 1e3;
        w.parallelFraction = 1.0;
        w.pattern = platform::Pattern::Dense;
        app.addStage(Stage("s" + std::to_string(i), w,
                           [](KernelCtx&) {}, nullptr));
    }
    app.setTaskFactory([](std::int64_t, std::uint64_t) {
        return std::make_unique<TaskObject>();
    });
    app.setTaskRefresher([](TaskObject&, std::int64_t, std::uint64_t) {
    });
    return app;
}

TEST(EnergyModel, PaperPowerEnvelopes)
{
    // Paper Sec. 4.2: the Jetson low-power mode reduces consumption
    // from 25 W to 7 W.
    EXPECT_NEAR(platform::jetsonOrinNano().peakPowerW(), 25.0, 0.1);
    EXPECT_NEAR(platform::jetsonOrinNanoLp().peakPowerW(), 7.0, 0.1);
}

TEST(EnergyModel, SystemPowerBetweenIdleAndPeak)
{
    for (const auto& soc : platform::paperDevices()) {
        const platform::PerfModel model(soc);
        const std::vector<bool> none(static_cast<std::size_t>(
            soc.numPus()), false);
        const std::vector<bool> all(static_cast<std::size_t>(
            soc.numPus()), true);
        const double idle = model.systemPowerW(none);
        const double full = model.systemPowerW(all);
        EXPECT_GT(idle, 0.0);
        EXPECT_GT(full, idle);
        // Governor boosts can push a class above its base-clock power,
        // so "peak at base clock" is not a strict bound; stay sane.
        EXPECT_LT(full, soc.peakPowerW() * 10.0);
    }
}

TEST(EnergyModel, BoostRaisesActivePowerQuadratically)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const int gpu = soc.gpuIndex();
    const double alone = model.activePowerW(gpu, 0);
    const double boosted = model.activePowerW(gpu, 1);
    const double f = soc.pu(gpu).busyFreqFactor;
    EXPECT_NEAR(boosted / alone, f * f, 1e-9);
}

TEST(EnergyModel, ExecutorIntegratesEnergy)
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(4);
    const SimExecutor exec(model);
    const auto run
        = exec.execute(app, Schedule::fromAssignment({0, 0, 1, 1}));
    EXPECT_GT(run.energyJoules, 0.0);
    // Average power within the physically sensible band.
    const std::vector<bool> none(2, false);
    EXPECT_GT(run.averagePowerW(), model.systemPowerW(none) - 1e-9);
    EXPECT_LT(run.averagePowerW(), 2.0 * soc.peakPowerW());
    EXPECT_NEAR(run.energyPerTaskJ() * run.tasks, run.energyJoules,
                1e-12);
}

TEST(EnergyModel, BusyPipelineDrawsMoreThanSerial)
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(4);
    const SimExecutor exec(model);
    const auto serial = exec.execute(
        app, Schedule::homogeneous(4, 0));
    const auto piped = exec.execute(
        app, Schedule::fromAssignment({0, 0, 1, 1}));
    // Two PUs active concurrently -> higher average power.
    EXPECT_GT(piped.averagePowerW(), serial.averagePowerW());
}

class DynamicOverheads : public ::testing::TestWithParam<double>
{
};

TEST_P(DynamicOverheads, ExecutesAllTasks)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);

    DynamicExecConfig cfg;
    cfg.numTasks = 12;
    cfg.dispatchOverheadUs = GetParam();
    const DynamicExecutor dyn(model, profile.interference, cfg);
    const auto run = dyn.execute(app);
    EXPECT_EQ(run.tasks, 12);
    EXPECT_GT(run.taskIntervalSeconds, 0.0);
    EXPECT_GT(run.makespanSeconds, 0.0);
    EXPECT_EQ(run.chunkBusyFraction.size(),
              static_cast<std::size_t>(soc.numPus()));
}

INSTANTIATE_TEST_SUITE_P(Overheads, DynamicOverheads,
                         ::testing::Values(0.0, 50.0, 500.0));

TEST(DynamicExecutor, OverheadMonotonicallyHurts)
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(6);
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);

    double prev = 0.0;
    for (const double us : {0.0, 100.0, 1000.0}) {
        DynamicExecConfig cfg;
        cfg.dispatchOverheadUs = us;
        const DynamicExecutor dyn(model, profile.interference, cfg);
        const double t = dyn.execute(app).taskIntervalSeconds;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(DynamicExecutor, DeterministicAcrossRuns)
{
    const auto soc = platform::oneplus11();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);
    const DynamicExecutor dyn(model, profile.interference);
    const auto a = dyn.execute(app);
    const auto b = dyn.execute(app);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
}

TEST(DynamicExecutor, SingleStageAppUsesFastestPu)
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    const platform::PerfModel model(soc);
    auto app = syntheticApp(1);
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);

    DynamicExecConfig cfg;
    cfg.dispatchOverheadUs = 0.0;
    cfg.tasksInFlight = 1;
    const DynamicExecutor dyn(model, profile.interference, cfg);
    const auto run = dyn.execute(app);
    // With one task in flight and one stage, every task lands on the
    // table-fastest PU; the other stays idle.
    const int fastest = profile.interference.at(0, 0)
                < profile.interference.at(0, 1)
        ? 0
        : 1;
    EXPECT_GT(run.chunkBusyFraction[static_cast<std::size_t>(fastest)],
              0.5);
    EXPECT_LT(run.chunkBusyFraction[static_cast<std::size_t>(
                  1 - fastest)],
              0.01);
}

TEST(EnergyObjective, CandidatesCarryEnergyPredictions)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);
    Optimizer opt(soc, profile.interference);
    for (const auto& c : opt.optimize()) {
        EXPECT_GT(c.predictedEnergyJ, 0.0);
        EXPECT_GT(c.predictedEdp(), 0.0);
    }
}

TEST(EnergyObjective, EdpModeNeverPicksWorseEdpThanLatencyMode)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);

    PlannerSpec lat_cfg;
    PlannerSpec edp_cfg;
    edp_cfg.objective = PlannerSpec::Objective::EnergyDelay;
    Optimizer lat_opt(soc, profile.interference, lat_cfg);
    Optimizer edp_opt(soc, profile.interference, edp_cfg);
    const auto by_latency = lat_opt.optimize();
    const auto by_edp = edp_opt.optimize();

    EXPECT_LE(by_edp.front().predictedEdp(),
              by_latency.front().predictedEdp() + 1e-15);
    // And the latency-mode winner has the better (or equal) latency.
    EXPECT_LE(by_latency.front().predictedLatency,
              by_edp.front().predictedLatency + 1e-15);
}

TEST(EnergyObjective, EnergyPredictionTracksSimulatedEnergy)
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetDense();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);
    Optimizer opt(soc, profile.interference);
    const auto cands = opt.optimize();

    const SimExecutor exec(model);
    const auto& c = cands.front();
    const auto run = exec.execute(app, c.schedule);
    // Predicted and simulated energy-per-task agree within 2x (the
    // prediction uses static duty cycles; the DES has fill/drain and
    // time-varying rates).
    const double ratio = run.energyPerTaskJ() / c.predictedEnergyJ;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(DataParallel, HarmonicCombinationBounds)
{
    ProfilingTable table({"a"}, {"cpu", "gpu"});
    table.set(0, 0, 4e-3);
    table.set(0, 1, 1e-3);
    Application app = syntheticApp(1);
    DataParallelConfig cfg;
    cfg.syncOverheadSeconds = 0.0;
    cfg.splittableFraction = 1.0;
    // 1 / (1/4 + 1/1) = 0.8 ms.
    EXPECT_NEAR(dataParallelLatency(app, table, cfg), 0.8e-3, 1e-9);
}

TEST(DataParallel, SerialFractionStaysOnFastestPu)
{
    ProfilingTable table({"a"}, {"cpu", "gpu"});
    table.set(0, 0, 4e-3);
    table.set(0, 1, 1e-3);
    Application app = syntheticApp(1);
    DataParallelConfig cfg;
    cfg.syncOverheadSeconds = 0.0;
    cfg.splittableFraction = 0.0;
    EXPECT_NEAR(dataParallelLatency(app, table, cfg), 1e-3, 1e-9);
}

TEST(DataParallel, SyncOverheadPerStage)
{
    ProfilingTable table({"a", "b"}, {"cpu"});
    table.set(0, 0, 1e-3);
    table.set(1, 0, 1e-3);
    Application app = syntheticApp(2);
    DataParallelConfig cfg;
    cfg.syncOverheadSeconds = 1e-4;
    cfg.splittableFraction = 1.0;
    EXPECT_NEAR(dataParallelLatency(app, table, cfg), 2e-3 + 2e-4,
                1e-9);
}

TEST(DataParallel, LosesOnMixedWorkloads)
{
    // The paper's Sec. 1 argument: forcing the GPU to take a share of
    // sorting hurts. On octree/Pixel the BT pipeline must beat the
    // data-parallel estimate.
    const auto soc = platform::pixel7a();
    const BetterTogether bt(soc);
    const auto app = apps::octreeApp();
    const auto report = bt.run(app);
    const double dp = dataParallelLatency(
        app, report.profile.interference);
    EXPECT_LT(report.bestLatencySeconds, dp);
}

} // namespace
} // namespace bt::core
