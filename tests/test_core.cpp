/**
 * @file
 * Unit tests for the core abstractions: UsmBuffer, TaskObject, Stage /
 * Application / TaskGraph, ProfilingTable, and the Schedule type with
 * its exhaustive enumeration (including the paper's 9-stage / 4-PU
 * space size).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <sstream>
#include <set>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "core/application.hpp"
#include "core/profiling_table.hpp"
#include "core/schedule.hpp"
#include "core/task_object.hpp"
#include "core/usm_buffer.hpp"
#include "platform/devices.hpp"

namespace bt::core {
namespace {

TEST(UsmBuffer, AllocatesZeroedAndAligned)
{
    UsmBuffer buf(1024);
    EXPECT_EQ(buf.sizeBytes(), 1024u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    for (std::uint8_t byte : buf.span<std::uint8_t>())
        EXPECT_EQ(byte, 0u);
}

TEST(UsmBuffer, TypedSpanViews)
{
    UsmBuffer buf(16 * sizeof(float));
    auto floats = buf.span<float>();
    EXPECT_EQ(floats.size(), 16u);
    floats[3] = 2.5f;
    // The same memory through another typed view.
    auto words = buf.span<std::uint32_t>();
    EXPECT_NE(words[3], 0u);
}

TEST(UsmBuffer, MoveTransfersOwnership)
{
    UsmBuffer a(64);
    a.span<std::uint8_t>()[0] = 7;
    void* p = a.data();
    UsmBuffer b(std::move(a));
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(a.data(), nullptr);
    EXPECT_EQ(b.span<std::uint8_t>()[0], 7);
}

TEST(UsmBuffer, ClearZeroes)
{
    UsmBuffer buf(32);
    std::memset(buf.data(), 0xAB, 32);
    buf.clear();
    for (std::uint8_t byte : buf.span<std::uint8_t>())
        EXPECT_EQ(byte, 0u);
}

TEST(TaskObject, BuffersAndScalars)
{
    TaskObject task;
    task.addBuffer("a", 128);
    task.addBuffer("b", 256);
    EXPECT_TRUE(task.hasBuffer("a"));
    EXPECT_FALSE(task.hasBuffer("c"));
    EXPECT_EQ(task.buffer("b").sizeBytes(), 256u);
    EXPECT_EQ(task.view<float>("a").size(), 32u);

    task.setScalar("count", 42);
    EXPECT_TRUE(task.hasScalar("count"));
    EXPECT_EQ(task.scalar("count"), 42);
    task.setScalar("count", 7);
    EXPECT_EQ(task.scalar("count"), 7);
}

TEST(TaskObject, ResetKeepsBuffersDropsScalars)
{
    TaskObject task;
    task.addBuffer("a", 64);
    task.view<std::uint8_t>("a")[0] = 9;
    task.setScalar("k", 1);
    task.setTaskIndex(5);
    task.reset();
    EXPECT_TRUE(task.hasBuffer("a"));
    EXPECT_EQ(task.view<std::uint8_t>("a")[0], 9); // data untouched
    EXPECT_FALSE(task.hasScalar("k"));
    EXPECT_EQ(task.taskIndex(), -1);
}

TEST(Stage, GpuFallsBackToCpuKernel)
{
    int cpu_runs = 0;
    Stage s("s", platform::WorkProfile{},
            [&](KernelCtx&) { ++cpu_runs; }, nullptr);
    TaskObject task;
    KernelCtx ctx{task, nullptr};
    s.runGpu(ctx);
    EXPECT_EQ(cpu_runs, 1);
}

TEST(Stage, DispatchByPuKind)
{
    int cpu_runs = 0, gpu_runs = 0;
    Stage s("s", platform::WorkProfile{},
            [&](KernelCtx&) { ++cpu_runs; },
            [&](KernelCtx&) { ++gpu_runs; });
    TaskObject task;
    KernelCtx ctx{task, nullptr};
    s.run(ctx, platform::PuKind::Cpu);
    s.run(ctx, platform::PuKind::Gpu);
    EXPECT_EQ(cpu_runs, 1);
    EXPECT_EQ(gpu_runs, 1);
}

TEST(TaskGraph, LinearChainKeepsOrder)
{
    TaskGraph g;
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(g.addNode(Stage("s" + std::to_string(i),
                                      platform::WorkProfile{},
                                      [](KernelCtx&) {}, nullptr)));
    for (int i = 0; i + 1 < 4; ++i)
        g.addEdge(ids[static_cast<std::size_t>(i)],
                  ids[static_cast<std::size_t>(i + 1)]);
    EXPECT_EQ(g.topologicalOrder(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskGraph, DiamondPrefersSmallerIds)
{
    TaskGraph g;
    for (int i = 0; i < 4; ++i)
        g.addNode(Stage("s" + std::to_string(i),
                        platform::WorkProfile{}, [](KernelCtx&) {},
                        nullptr));
    // 0 -> {1, 2} -> 3 : deterministic order 0,1,2,3.
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    EXPECT_EQ(g.topologicalOrder(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskGraph, LinearizeMovesStagesIntoApplication)
{
    TaskGraph g;
    g.addNode(Stage("b", platform::WorkProfile{}, [](KernelCtx&) {},
                    nullptr));
    g.addNode(Stage("a", platform::WorkProfile{}, [](KernelCtx&) {},
                    nullptr));
    g.addEdge(0, 1);
    Application app("test", "none", "test");
    std::move(g).linearizeInto(app);
    ASSERT_EQ(app.numStages(), 2);
    EXPECT_EQ(app.stage(0).name(), "b");
    EXPECT_EQ(app.stage(1).name(), "a");
}

TEST(ProfilingTable, SetGetAndRangeTime)
{
    ProfilingTable t({"s0", "s1", "s2"}, {"cpu", "gpu"});
    EXPECT_EQ(t.numStages(), 3);
    EXPECT_EQ(t.numPus(), 2);
    t.set(0, 0, 1.0);
    t.set(1, 0, 2.0);
    t.set(2, 0, 4.0);
    EXPECT_DOUBLE_EQ(t.at(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(t.rangeTime(0, 2, 0), 7.0);
    EXPECT_DOUBLE_EQ(t.rangeTime(1, 1, 0), 2.0);
}

TEST(ProfilingTable, CsvRoundTrip)
{
    ProfilingTable t({"conv1", "pool1"}, {"big", "gpu"});
    t.set(0, 0, 1.5e-3);
    t.set(0, 1, 2.5e-4);
    t.set(1, 0, 3.25e-5);
    t.set(1, 1, 7.5e-6);
    t.setStddev(0, 0, 1e-5);

    std::stringstream ss;
    t.saveCsv(ss);
    const auto back = ProfilingTable::loadCsv(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->stages(), t.stages());
    EXPECT_EQ(back->pus(), t.pus());
    for (int s = 0; s < 2; ++s)
        for (int p = 0; p < 2; ++p) {
            EXPECT_DOUBLE_EQ(back->at(s, p), t.at(s, p));
            EXPECT_DOUBLE_EQ(back->stddevAt(s, p), t.stddevAt(s, p));
        }
}

TEST(ProfilingTable, CsvRejectsMalformedInput)
{
    for (const char* text :
         {"", "wrong header\n",
          "stage,pu,mean_s,stddev_s\na,b,notanumber,0\n",
          "stage,pu,mean_s,stddev_s\na,b,-1.0,0\n",
          // Missing one (stage, pu) combination.
          "stage,pu,mean_s,stddev_s\na,x,1,0\na,y,1,0\nb,x,1,0\n"}) {
        std::stringstream ss(text);
        EXPECT_FALSE(ProfilingTable::loadCsv(ss).has_value())
            << "accepted: " << text;
    }
}

TEST(Schedule, HomogeneousHasOneChunk)
{
    const Schedule s = Schedule::homogeneous(5, 2);
    EXPECT_EQ(s.numChunks(), 1);
    EXPECT_EQ(s.numStages(), 5);
    EXPECT_EQ(s.puOfStage(0), 2);
    EXPECT_EQ(s.puOfStage(4), 2);
}

TEST(Schedule, FromAssignmentRoundTrip)
{
    const std::vector<int> assign{0, 0, 3, 3, 3, 1};
    const Schedule s = Schedule::fromAssignment(assign);
    EXPECT_EQ(s.numChunks(), 3);
    EXPECT_EQ(s.toAssignment(), assign);
    EXPECT_EQ(s.compactString(), "003331");
}

TEST(Schedule, ValidityChecks)
{
    const Schedule s = Schedule::fromAssignment({0, 1, 1});
    EXPECT_TRUE(s.valid(3, 2));
    EXPECT_FALSE(s.valid(4, 2));  // wrong stage count
    EXPECT_FALSE(s.valid(3, 1));  // PU 1 out of range
}

TEST(Schedule, PredictedCosts)
{
    ProfilingTable t({"s0", "s1", "s2"}, {"cpu", "gpu"});
    // cpu: 1, 2, 4 ; gpu: 3, 1, 1
    t.set(0, 0, 1.0);
    t.set(1, 0, 2.0);
    t.set(2, 0, 4.0);
    t.set(0, 1, 3.0);
    t.set(1, 1, 1.0);
    t.set(2, 1, 1.0);

    const Schedule s = Schedule::fromAssignment({0, 1, 1});
    EXPECT_DOUBLE_EQ(s.chunkTime(t, 0), 1.0);
    EXPECT_DOUBLE_EQ(s.chunkTime(t, 1), 2.0);
    EXPECT_DOUBLE_EQ(s.bottleneckTime(t), 2.0);
    EXPECT_DOUBLE_EQ(s.gapness(t), 1.0);

    const Schedule h = Schedule::homogeneous(3, 0);
    EXPECT_DOUBLE_EQ(h.bottleneckTime(t), 7.0);
    EXPECT_DOUBLE_EQ(h.gapness(t), 0.0);
}

TEST(Schedule, ToStringUsesLabels)
{
    const auto soc = platform::jetsonOrinNano();
    const Schedule s = Schedule::fromAssignment({0, 0, 1});
    const std::string str = s.toString(soc, {"a", "b", "c"});
    EXPECT_NE(str.find("[a..b]->cpu"), std::string::npos);
    EXPECT_NE(str.find("[c]->gpu"), std::string::npos);
}

TEST(ScheduleEnumeration, PaperSpaceSize)
{
    // 9 stages on 4 PU classes: compositions into k <= 4 contiguous
    // chunks with distinct PUs: sum_k C(8, k-1) * P(4, k) = 2116.
    EXPECT_EQ(countSchedules(9, 4), 2116u);
}

TEST(ScheduleEnumeration, SmallSpacesByHand)
{
    EXPECT_EQ(countSchedules(1, 1), 1u);
    EXPECT_EQ(countSchedules(1, 3), 3u);
    EXPECT_EQ(countSchedules(2, 2), 2u + 2u); // 2 single + P(2,2)
    EXPECT_EQ(countSchedules(3, 2), 2u + 2u * 2u); // k=1:2, k=2: 2*2
}

TEST(ScheduleEnumeration, AllValidAndDistinct)
{
    const auto all = enumerateSchedules(5, 3);
    EXPECT_EQ(all.size(), countSchedules(5, 3));
    std::set<std::string> seen;
    for (const auto& s : all) {
        EXPECT_TRUE(s.valid(5, 3));
        EXPECT_TRUE(seen.insert(s.compactString()).second);
    }
}

TEST(ScheduleEnumeration, ChunkCountNeverExceedsPus)
{
    for (const auto& s : enumerateSchedules(6, 2))
        EXPECT_LE(s.numChunks(), 2);
}

TEST(Applications, AlexNetHasNineStages)
{
    const auto dense = apps::alexnetDense();
    EXPECT_EQ(dense.numStages(), 9);
    EXPECT_EQ(dense.name(), "AlexNet-Dense");
    EXPECT_EQ(dense.inputKind(), "Image");

    const auto sparse = apps::alexnetSparse();
    EXPECT_EQ(sparse.numStages(), 9);
    EXPECT_EQ(sparse.characteristics(), "Sparse Linear Algebra");
}

TEST(Applications, OctreeHasSevenStagesInPipelineOrder)
{
    const auto octree = apps::octreeApp();
    ASSERT_EQ(octree.numStages(), 7);
    const std::vector<std::string> expect{
        "morton", "sort", "unique", "radix_tree",
        "edge_count", "prefix_sum", "build_octree"};
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(octree.stage(i).name(),
                  expect[static_cast<std::size_t>(i)]);
}

TEST(Applications, WorkProfilesArePositive)
{
    for (const auto& app :
         {apps::alexnetDense(), apps::alexnetSparse(),
          apps::octreeApp()}) {
        for (const auto& stage : app.stages()) {
            EXPECT_GT(stage.work().flops, 0.0) << stage.name();
            EXPECT_GT(stage.work().bytes, 0.0) << stage.name();
            EXPECT_GT(stage.work().parallelFraction, 0.0);
            EXPECT_LE(stage.work().parallelFraction, 1.0);
        }
    }
}

TEST(Applications, SparseConvHasFewerFlopsThanDense)
{
    const auto dense = apps::alexnetDense();
    const auto sparse
        = apps::alexnetSparse(apps::AlexNetConfig{.batch = 1,
                                                  .sparse = true});
    // Same batch: pruning must cut conv flops by roughly the density.
    EXPECT_LT(sparse.stage(2).work().flops,
              dense.stage(2).work().flops * 0.05);
}

TEST(Applications, TaskFactoryProducesRefreshableTasks)
{
    const auto app = apps::alexnetDense(apps::AlexNetConfig{.batch = 1});
    auto task = app.makeTask(0, 99);
    ASSERT_TRUE(task->hasBuffer("act0"));
    const float first = task->view<float>("act0")[0];
    app.refreshTask(*task, 1, 99);
    const float second = task->view<float>("act0")[0];
    EXPECT_NE(first, second); // different task index -> new input
    EXPECT_EQ(task->taskIndex(), 1);

    // Same index regenerates identical input (determinism).
    app.refreshTask(*task, 0, 99);
    EXPECT_EQ(task->view<float>("act0")[0], first);
}

} // namespace
} // namespace bt::core
