/**
 * @file
 * Unit tests for the scheduling substrate: thread pool fork-join
 * semantics, CPU sets / affinity, and the lock-free SPSC queue
 * (including a two-thread stress test).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/affinity.hpp"
#include "sched/spsc_queue.hpp"
#include "sched/thread_pool.hpp"

namespace bt::sched {
namespace {

TEST(CpuSet, BasicsAndDedup)
{
    CpuSet s({3, 1, 2, 2, 1});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(0));
    s.add(0);
    EXPECT_TRUE(s.contains(0));
    s.add(0); // idempotent
    EXPECT_EQ(s.size(), 4u);
}

TEST(CpuSet, RangeAndToString)
{
    const CpuSet s = CpuSet::range(4, 4);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.toString(), "{4-7}");

    CpuSet mixed({0, 2, 3, 4, 9});
    EXPECT_EQ(mixed.toString(), "{0,2-4,9}");
    EXPECT_EQ(CpuSet().toString(), "{}");
}

TEST(Affinity, QueryCurrentNonEmpty)
{
    const CpuSet current = currentThreadAffinity();
    EXPECT_FALSE(current.empty());
    EXPECT_GE(onlineCoreCount(), 1);
}

TEST(Affinity, BindToOwnCpuSucceeds)
{
    const CpuSet current = currentThreadAffinity();
    ASSERT_FALSE(current.empty());
    EXPECT_TRUE(bindCurrentThread(current));
}

TEST(Affinity, BindEmptyFails)
{
    EXPECT_FALSE(bindCurrentThread(CpuSet()));
}

class ThreadPoolSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(ThreadPoolSizes, ParallelForSumsCorrectly)
{
    ThreadPool pool(GetParam());
    const std::int64_t n = 10007;
    std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
    pool.parallelFor(0, n, [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)] = i;
    });
    const std::int64_t sum
        = std::accumulate(out.begin(), out.end(), std::int64_t{0});
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST_P(ThreadPoolSizes, EveryIndexVisitedExactlyOnce)
{
    ThreadPool pool(GetParam());
    const std::int64_t n = 4097;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallelFor(0, n, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolSizes, ReusableAcrossRegions)
{
    ThreadPool pool(GetParam());
    for (int round = 0; round < 10; ++round) {
        std::atomic<std::int64_t> sum{0};
        pool.parallelFor(0, 100, [&](std::int64_t i) {
            sum.fetch_add(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThreadPoolSizes,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(5, 5, [&](std::int64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, BlocksCoverRangeWithoutOverlap)
{
    ThreadPool pool(4);
    const std::int64_t n = 1000;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallelForBlocks(0, n, [&](std::int64_t lo, std::int64_t hi) {
        EXPECT_LT(lo, hi);
        for (std::int64_t i = lo; i < hi; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallRangeFewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallelFor(0, 3, [&](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

TEST(SpscQueue, PushPopSingleThread)
{
    SpscQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_TRUE(q.emptyApprox());
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_EQ(q.sizeApprox(), 2u);
    EXPECT_EQ(q.tryPop().value(), 1);
    EXPECT_EQ(q.tryPop().value(), 2);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(SpscQueue, FullRejectsPush)
{
    SpscQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.tryPop().value(), 1);
    EXPECT_TRUE(q.tryPush(3));
}

TEST(SpscQueue, WrapAroundPreservesFifo)
{
    SpscQueue<int> q(3);
    int next_push = 0, next_pop = 0;
    for (int round = 0; round < 50; ++round) {
        while (q.tryPush(next_push))
            ++next_push;
        std::optional<int> v;
        while ((v = q.tryPop()))
            EXPECT_EQ(*v, next_pop++);
    }
    EXPECT_EQ(next_push, next_pop);
}

TEST(SpscQueue, TwoThreadStress)
{
    SpscQueue<std::int64_t> q(16);
    const std::int64_t n = 200000;
    std::int64_t sum = 0;

    std::thread consumer([&] {
        std::int64_t expect = 0;
        while (expect < n) {
            auto v = q.tryPop();
            if (!v) {
                std::this_thread::yield();
                continue;
            }
            ASSERT_EQ(*v, expect); // FIFO order
            sum += *v;
            ++expect;
        }
    });

    for (std::int64_t i = 0; i < n; ++i)
        while (!q.tryPush(i))
            std::this_thread::yield();
    consumer.join();
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(SpscQueue, MoveOnlyElements)
{
    SpscQueue<std::unique_ptr<int>> q(2);
    EXPECT_TRUE(q.tryPush(std::make_unique<int>(41)));
    auto v = q.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, 41);
}

} // namespace
} // namespace bt::sched
