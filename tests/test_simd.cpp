/**
 * @file
 * SIMD tier coverage:
 *  - Vec semantics against the VecGeneric lane-loop model (max's
 *    NaN/signed-zero behavior, partial load/store edges, shuffles);
 *  - scalar-vs-SIMD bit-identity sweeps over every vectorized kernel
 *    at awkward shapes (lane-1, lane, lane+1, primes, minimal sizes)
 *    and thread counts, for every tier available on this host;
 *  - the gemm work decomposition (small-M/large-N must parallelize and
 *    stay bit-identical);
 *  - a chained conv-net forward (the app stage composition) across
 *    tiers;
 *  - bt::check interaction: seeded-defect fixtures still flag and
 *    clean kernels stay clean at any tier, because the instrumented
 *    path runs the scalar per-element GPU bodies regardless of the
 *    host tier.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/fixtures.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/csr.hpp"
#include "kernels/gemm_conv.hpp"
#include "kernels/linear.hpp"
#include "kernels/pooling.hpp"
#include "kernels/simd_ops.hpp"
#include "kernels/sparse_conv.hpp"
#include "sched/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include "common/simd_x86.hpp"
#endif

namespace bt::kernels {
namespace {

std::vector<float>
randomFloats(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.nextRange(-1.0, 1.0));
    return v;
}

void
expectBitIdentical(const std::vector<float>& golden,
                   const std::vector<float>& got, const std::string& label)
{
    ASSERT_EQ(golden.size(), got.size()) << label;
    if (!golden.empty()) {
        ASSERT_EQ(0,
                  std::memcmp(golden.data(), got.data(),
                              golden.size() * sizeof(float)))
            << label;
    }
}

/** Pin a dispatch tier for the current scope. */
class ScopedTier
{
  public:
    explicit ScopedTier(simd::Isa isa) { setSimdIsaForTesting(isa); }
    ~ScopedTier() { resetSimdIsaForTesting(); }
    ScopedTier(const ScopedTier&) = delete;
    ScopedTier& operator=(const ScopedTier&) = delete;
};

std::vector<simd::Isa>
availableVectorTiers()
{
    std::vector<simd::Isa> tiers;
    for (simd::Isa isa :
         {simd::Isa::Sse2, simd::Isa::Avx2, simd::Isa::Neon}) {
        if (simdTierAvailable(isa))
            tiers.push_back(isa);
    }
    return tiers;
}

/**
 * Golden run forced scalar and serial; every (tier, team) combination
 * must reproduce it bit-for-bit. @p run maps a CpuExec to the kernel's
 * flattened output.
 */
template <typename Run>
void
expectTierInvariant(Run&& run)
{
    std::vector<float> golden;
    {
        const ScopedTier scalar(simd::Isa::Scalar);
        golden = run(CpuExec{});
    }
    for (simd::Isa isa : availableVectorTiers()) {
        const ScopedTier tier(isa);
        expectBitIdentical(golden, run(CpuExec{}),
                           std::string(simd::isaName(isa)) + "/serial");
        for (int team : {2, 8}) {
            sched::ThreadPool pool(team);
            expectBitIdentical(golden, run(CpuExec{&pool}),
                               std::string(simd::isaName(isa)) + "/team"
                                   + std::to_string(team));
        }
    }
    // The scalar fallback's own parallel decomposition must agree too.
    {
        const ScopedTier scalar(simd::Isa::Scalar);
        for (int team : {2, 8}) {
            sched::ThreadPool pool(team);
            expectBitIdentical(golden, run(CpuExec{&pool}),
                               "scalar/team" + std::to_string(team));
        }
    }
}

// ------------------------------------------------------- Vec semantics

template <typename V>
void
vecMatchesModel()
{
    constexpr int W = V::width;
    using M = simd::VecGeneric<W>;
    alignas(64) float a[W];
    alignas(64) float b[W];
    for (int i = 0; i < W; ++i) {
        a[i] = 0.25f * static_cast<float>(i) - 0.8f;
        b[i] = -0.5f * static_cast<float>(i) + 0.6f;
    }
    // Adversarial max lanes: NaN on either side, signed zeros, equal.
    a[0] = std::numeric_limits<float>::quiet_NaN();
    b[W - 1] = std::numeric_limits<float>::quiet_NaN();
    a[1 % W] = -0.0f;
    b[1 % W] = 0.0f;

    const auto check = [&](auto vec, auto model, const char* what) {
        alignas(64) float got[W];
        alignas(64) float want[W];
        vec.store(got);
        model.store(want);
        ASSERT_EQ(0, std::memcmp(got, want, sizeof(got))) << what;
    };

    check(V::add(V::load(a), V::load(b)), M::add(M::load(a), M::load(b)),
          "add");
    check(V::mul(V::load(a), V::load(b)), M::mul(M::load(a), M::load(b)),
          "mul");
    check(V::mulAdd(V::load(a), V::load(b), V::broadcast(0.125f)),
          M::mulAdd(M::load(a), M::load(b), M::broadcast(0.125f)),
          "mulAdd");
    check(V::max(V::load(a), V::load(b)), M::max(M::load(a), M::load(b)),
          "max(a,b)");
    check(V::max(V::load(b), V::load(a)), M::max(M::load(b), M::load(a)),
          "max(b,a)");

    // Partial loads zero-fill; partial stores leave the tail untouched.
    for (int n = 0; n <= W; ++n) {
        check(V::loadPartial(a, n), M::loadPartial(a, n), "loadPartial");
        alignas(64) float got[W];
        alignas(64) float want[W];
        for (int i = 0; i < W; ++i)
            got[i] = want[i] = 123.5f;
        V::loadu(b).storePartial(got, n);
        M::loadu(b).storePartial(want, n);
        ASSERT_EQ(0, std::memcmp(got, want, sizeof(got)))
            << "storePartial n=" << n;
    }

    alignas(64) float wide[2 * W];
    for (int i = 0; i < 2 * W; ++i)
        wide[i] = 1.5f * static_cast<float>(i) - 3.0f;
    V e;
    V o;
    M me;
    M mo;
    V::deinterleave2(wide, e, o);
    M::deinterleave2(wide, me, mo);
    check(e, me, "deinterleave even");
    check(o, mo, "deinterleave odd");

    check(V::gatherStride(wide, 2), M::gatherStride(wide, 2), "gather");
    check(V::broadcast(-7.25f), M::broadcast(-7.25f), "broadcast");
    check(V::zero(), M::zero(), "zero");
}

TEST(SimdVec, GenericWidth4SelfConsistent)
{
    vecMatchesModel<simd::VecGeneric<4>>();
}

TEST(SimdVec, GenericWidth8SelfConsistent)
{
    vecMatchesModel<simd::VecGeneric<8>>();
}

#if defined(__x86_64__) || defined(__i386__)
TEST(SimdVec, Sse2MatchesModel) { vecMatchesModel<simd::VecSse2>(); }
#endif

TEST(SimdVec, MaxMatchesStdMaxOnSpecials)
{
    using M = simd::VecGeneric<4>;
    const float nan = std::numeric_limits<float>::quiet_NaN();
    alignas(64) const float a[4] = {nan, 1.0f, -0.0f, 2.0f};
    alignas(64) const float b[4] = {1.0f, nan, 0.0f, -2.0f};
    alignas(64) float got[4];
    M::max(M::load(a), M::load(b)).store(got);
    for (int i = 0; i < 4; ++i) {
        const float want = std::max(a[i], b[i]);
        ASSERT_EQ(0, std::memcmp(&got[i], &want, sizeof(float))) << i;
    }
}

TEST(SimdAlloc, AlignedVectorIsAligned)
{
    simd::AlignedVector<float> v(1027);
    ASSERT_EQ(0,
              reinterpret_cast<std::uintptr_t>(v.data()) % simd::kAlign);
}

TEST(SimdDispatch, TierReportsLanesAndAvailability)
{
    const SimdTier tier = simdTier();
    EXPECT_EQ(tier.lanes, simd::isaLanes(tier.isa));
    EXPECT_TRUE(simdTierAvailable(tier.isa));
    EXPECT_TRUE(simdTierAvailable(simd::Isa::Scalar));
    for (simd::Isa isa : availableVectorTiers()) {
        const ScopedTier forced(isa);
        EXPECT_EQ(simdTier().isa, isa);
        EXPECT_TRUE(simdTier().forced);
    }
}

// --------------------------------------------------- kernel sweeps

struct GemmCase
{
    int m;
    int n;
    int k;
};

class SimdGemm : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(SimdGemm, BitIdenticalAcrossTiers)
{
    const auto [m, n, k] = GetParam();
    const auto a = randomFloats(static_cast<std::size_t>(m) * k, 11);
    const auto b = randomFloats(static_cast<std::size_t>(k) * n, 12);
    expectTierInvariant([&](const CpuExec& exec) {
        std::vector<float> c(static_cast<std::size_t>(m) * n, -42.0f);
        gemmCpu(exec, m, n, k, a, b, c);
        return c;
    });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdGemm,
    ::testing::Values(
        // lane-1 / lane / lane+1 around both SSE (4/8) and AVX2 (8/16)
        // vector strips, primes, K spanning multiple 256-wide panels.
        GemmCase{1, 1, 1}, GemmCase{1, 7, 3}, GemmCase{1, 8, 9},
        GemmCase{1, 9, 2}, GemmCase{2, 15, 5}, GemmCase{2, 16, 7},
        GemmCase{2, 17, 11}, GemmCase{3, 31, 13}, GemmCase{4, 32, 16},
        GemmCase{5, 33, 17}, GemmCase{7, 13, 300}, GemmCase{4, 48, 257},
        GemmCase{13, 129, 31}, GemmCase{2, 512, 64},
        GemmCase{64, 100, 72}),
    [](const auto& param_info) {
        return "m" + std::to_string(param_info.param.m) + "_n"
            + std::to_string(param_info.param.n) + "_k"
            + std::to_string(param_info.param.k);
    });

/** Small-M/large-N (the im2col conv layout): the decomposition must
 *  spread over the team and still match the serial scalar result. */
TEST(SimdGemm, SmallMLargeNParallelizesBitIdentically)
{
    const int m = 2;
    const int n = 2048;
    const int k = 64;
    const auto a = randomFloats(static_cast<std::size_t>(m) * k, 21);
    const auto b = randomFloats(static_cast<std::size_t>(k) * n, 22);
    std::vector<float> golden(static_cast<std::size_t>(m) * n);
    {
        const ScopedTier scalar(simd::Isa::Scalar);
        gemmCpu(CpuExec{}, m, n, k, a, b, golden);
    }
    sched::ThreadPool pool(8);
    for (simd::Isa isa : availableVectorTiers()) {
        const ScopedTier tier(isa);
        std::vector<float> c(golden.size(), 0.0f);
        gemmCpu(CpuExec{&pool}, m, n, k, a, b, c);
        expectBitIdentical(golden, c, simd::isaName(isa));
    }
    const ScopedTier scalar(simd::Isa::Scalar);
    std::vector<float> c(golden.size(), 0.0f);
    gemmCpu(CpuExec{&pool}, m, n, k, a, b, c);
    expectBitIdentical(golden, c, "scalar pooled");
}

struct ConvCase
{
    int c;
    int h;
    int w;
    int outC;
};

class SimdConv : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(SimdConv, DenseBitIdenticalAcrossTiers)
{
    const auto [c, h, w, outC] = GetParam();
    const ConvShape shape{Shape3{c, h, w}, outC};
    const auto in = randomFloats(
        static_cast<std::size_t>(shape.in.elems()), 31);
    const auto wts = randomFloats(
        static_cast<std::size_t>(shape.weightElems()), 32);
    const auto bias = randomFloats(static_cast<std::size_t>(outC), 33);
    expectTierInvariant([&](const CpuExec& exec) {
        std::vector<float> out(
            static_cast<std::size_t>(shape.out().elems()));
        conv2dCpu(exec, shape, in, wts, bias, out);
        return out;
    });
}

TEST_P(SimdConv, SparseBitIdenticalAcrossTiers)
{
    const auto [c, h, w, outC] = GetParam();
    const ConvShape shape{Shape3{c, h, w}, outC};
    const auto in = randomFloats(
        static_cast<std::size_t>(shape.in.elems()), 41);
    const auto dense = randomFloats(
        static_cast<std::size_t>(shape.weightElems()), 42);
    const auto bias = randomFloats(static_cast<std::size_t>(outC), 43);
    const CsrMatrix csr = pruneToCsr(dense, outC, c * 9, 0.4);
    expectTierInvariant([&](const CpuExec& exec) {
        std::vector<float> out(
            static_cast<std::size_t>(shape.out().elems()));
        sparseConvCpu(exec, shape, in, csr, bias, out);
        return out;
    });
}

TEST_P(SimdConv, GemmConvBitIdenticalAcrossTiers)
{
    const auto [c, h, w, outC] = GetParam();
    const ConvShape shape{Shape3{c, h, w}, outC};
    const auto in = randomFloats(
        static_cast<std::size_t>(shape.in.elems()), 51);
    const auto wts = randomFloats(
        static_cast<std::size_t>(shape.weightElems()), 52);
    const auto bias = randomFloats(static_cast<std::size_t>(outC), 53);
    const std::size_t colsElems = static_cast<std::size_t>(c) * 9
        * static_cast<std::size_t>(h) * w;
    expectTierInvariant([&](const CpuExec& exec) {
        simd::AlignedVector<float> cols(colsElems);
        std::vector<float> out(
            static_cast<std::size_t>(shape.out().elems()));
        conv2dGemmCpu(exec, shape, in, wts, bias,
                      std::span<float>(cols.data(), cols.size()), out);
        return out;
    });
}

TEST_P(SimdConv, Im2colBitIdenticalAcrossTiers)
{
    const auto [c, h, w, outC] = GetParam();
    (void)outC;
    const Shape3 shape{c, h, w};
    const auto in = randomFloats(
        static_cast<std::size_t>(shape.elems()), 61);
    const std::size_t colsElems = static_cast<std::size_t>(c) * 9
        * static_cast<std::size_t>(h) * w;
    expectTierInvariant([&](const CpuExec& exec) {
        std::vector<float> cols(colsElems, -7.0f);
        im2col(exec, shape, in, cols);
        return cols;
    });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdConv,
    ::testing::Values(ConvCase{1, 1, 1, 1}, ConvCase{1, 3, 3, 2},
                      ConvCase{1, 5, 7, 3}, ConvCase{2, 4, 8, 4},
                      ConvCase{3, 7, 9, 5}, ConvCase{2, 2, 17, 7},
                      ConvCase{5, 16, 15, 8}, ConvCase{3, 13, 31, 6}),
    [](const auto& param_info) {
        return "c" + std::to_string(param_info.param.c) + "h"
            + std::to_string(param_info.param.h) + "w"
            + std::to_string(param_info.param.w) + "oc"
            + std::to_string(param_info.param.outC);
    });

TEST(SimdMaxpool, BitIdenticalAcrossTiers)
{
    const Shape3 shapes[] = {{1, 2, 2},   {3, 6, 8},  {2, 16, 34},
                             {5, 30, 14}, {3, 7, 9},  {1, 2, 18},
                             {4, 9, 33},  {2, 5, 17}};
    for (const Shape3& shape : shapes) {
        const auto in = randomFloats(
            static_cast<std::size_t>(shape.elems()), 71);
        expectTierInvariant([&](const CpuExec& exec) {
            std::vector<float> out(static_cast<std::size_t>(
                pooledShape(shape).elems()));
            maxpoolCpu(exec, shape, in, out);
            return out;
        });
    }
}

TEST(SimdLinear, BitIdenticalAcrossTiers)
{
    const int cases[][2] = {{1, 1},  {7, 9},   {16, 8},  {31, 33},
                            {9, 31}, {257, 15}, {64, 10}, {300, 17}};
    for (const auto& fc : cases) {
        const int inF = fc[0];
        const int outF = fc[1];
        const auto in = randomFloats(static_cast<std::size_t>(inF), 81);
        const auto wts = randomFloats(
            static_cast<std::size_t>(inF) * outF, 82);
        const auto bias = randomFloats(static_cast<std::size_t>(outF),
                                       83);
        expectTierInvariant([&](const CpuExec& exec) {
            std::vector<float> out(static_cast<std::size_t>(outF));
            linearCpu(exec, inF, outF, in, wts, bias, out);
            return out;
        });
    }
}

// ----------------------------------------------- chained forward pass

/**
 * Compose the kernels the way the AlexNet app stages do
 * (conv -> pool -> conv -> pool -> linear) and require the whole chain
 * to be bit-identical across tiers: divergence anywhere would compound
 * through downstream stages, so this is the app-level guarantee.
 */
TEST(SimdForward, ChainedDenseAndSparseBitIdenticalAcrossTiers)
{
    const ConvShape conv1{Shape3{3, 16, 16}, 8};
    const Shape3 pool1In = conv1.out();
    const Shape3 pool1Out = pooledShape(pool1In);
    const ConvShape conv2{pool1Out, 12};
    const Shape3 pool2Out = pooledShape(conv2.out());
    const int fcIn = static_cast<int>(pool2Out.elems());
    const int fcOut = 10;

    const auto image = randomFloats(
        static_cast<std::size_t>(conv1.in.elems()), 91);
    const auto w1 = randomFloats(
        static_cast<std::size_t>(conv1.weightElems()), 92);
    const auto b1 = randomFloats(static_cast<std::size_t>(conv1.outC),
                                 93);
    const auto w2dense = randomFloats(
        static_cast<std::size_t>(conv2.weightElems()), 94);
    const auto b2 = randomFloats(static_cast<std::size_t>(conv2.outC),
                                 95);
    const CsrMatrix w2csr
        = pruneToCsr(w2dense, conv2.outC, conv2.in.c * 9, 0.35);
    const auto wfc = randomFloats(
        static_cast<std::size_t>(fcIn) * fcOut, 96);
    const auto bfc = randomFloats(static_cast<std::size_t>(fcOut), 97);

    for (const bool sparse : {false, true}) {
        expectTierInvariant([&](const CpuExec& exec) {
            std::vector<float> act1(
                static_cast<std::size_t>(conv1.out().elems()));
            conv2dCpu(exec, conv1, image, w1, b1, act1);
            std::vector<float> pooled1(
                static_cast<std::size_t>(pool1Out.elems()));
            maxpoolCpu(exec, pool1In, act1, pooled1);
            std::vector<float> act2(
                static_cast<std::size_t>(conv2.out().elems()));
            if (sparse)
                sparseConvCpu(exec, conv2, pooled1, w2csr, b2, act2);
            else
                conv2dCpu(exec, conv2, pooled1, w2dense, b2, act2);
            std::vector<float> pooled2(
                static_cast<std::size_t>(pool2Out.elems()));
            maxpoolCpu(exec, conv2.out(), act2, pooled2);
            std::vector<float> logits(static_cast<std::size_t>(fcOut));
            linearCpu(exec, fcIn, fcOut, pooled2, wfc, bfc, logits);
            return logits;
        });
    }
}

// -------------------------------------------------- checker interplay

/**
 * The instrumented path must be tier-independent: checked launches run
 * the scalar per-element GPU bodies, so outputs match the scalar
 * reference and the report stays clean no matter which host tier is
 * pinned.
 */
TEST(SimdCheck, CleanKernelStaysCleanAndScalarUnderEveryTier)
{
    const ConvShape shape{Shape3{3, 9, 11}, 5};
    const auto in = randomFloats(
        static_cast<std::size_t>(shape.in.elems()), 111);
    const auto wts = randomFloats(
        static_cast<std::size_t>(shape.weightElems()), 112);
    const auto bias = randomFloats(static_cast<std::size_t>(shape.outC),
                                   113);
    std::vector<float> ref(
        static_cast<std::size_t>(shape.out().elems()));
    conv2dReference(shape, in, wts, bias, ref);

    std::vector<simd::Isa> tiers = availableVectorTiers();
    tiers.push_back(simd::Isa::Scalar);
    for (simd::Isa isa : tiers) {
        const ScopedTier tier(isa);
        check::Checker checker;
        GpuExec exec;
        exec.observer = &checker;
        std::vector<float> out(ref.size());
        conv2dGpu(exec, shape, in, wts, bias, out);
        expectBitIdentical(ref, out, simd::isaName(isa));
        EXPECT_TRUE(checker.report().clean()) << simd::isaName(isa);
    }
}

TEST(SimdCheck, SeededDefectFixturesStillFlagUnderEveryTier)
{
    std::vector<simd::Isa> tiers = availableVectorTiers();
    tiers.push_back(simd::Isa::Scalar);
    for (simd::Isa isa : tiers) {
        const ScopedTier tier(isa);
        for (const auto& result : check::runSeededDefects()) {
            EXPECT_TRUE(result.flagged)
                << result.name << " under " << simd::isaName(isa);
        }
    }
}

} // namespace
} // namespace bt::kernels
