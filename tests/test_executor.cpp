/**
 * @file
 * Tests for the BT-Implementer executors and the autotuner: virtual-time
 * pipeline semantics (bottleneck-limited throughput, utilization,
 * determinism), functional correctness of pipelined execution under
 * arbitrary schedules (both executors), and autotuning behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "core/autotuner.hpp"
#include "core/native_executor.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"

namespace bt::core {
namespace {

/** Tiny synthetic application with exactly known work profiles. */
Application
syntheticApp(int stages, double flops_each = 1e6)
{
    Application app("Synthetic", "token", "test");
    for (int i = 0; i < stages; ++i) {
        platform::WorkProfile w;
        w.flops = flops_each * (1 + i % 3);
        w.bytes = 1e3;
        w.parallelFraction = 1.0;
        w.pattern = platform::Pattern::Dense;
        app.addStage(Stage("s" + std::to_string(i), w,
                           [](KernelCtx&) {}, nullptr));
    }
    app.setTaskFactory([](std::int64_t, std::uint64_t) {
        return std::make_unique<TaskObject>();
    });
    app.setTaskRefresher([](TaskObject&, std::int64_t, std::uint64_t) {
    });
    return app;
}

/** Noise-free Jetson clone for analytic checks. */
platform::SocDescription
quietJetson()
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    return soc;
}

TEST(SimExecutor, SingleChunkMatchesAnalyticTime)
{
    const auto soc = quietJetson();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(3);

    SimExecConfig cfg;
    cfg.numTasks = 10;
    const SimExecutor exec(model, cfg);
    const auto schedule = Schedule::homogeneous(3, 0);
    const auto result = exec.execute(app, schedule);

    double expect = 0.0;
    for (const auto& s : app.stages())
        expect += model.isolatedTime(s.work(), 0);
    // One chunk, no overlap: makespan = tasks * per-task time.
    EXPECT_NEAR(result.makespanSeconds, 10 * expect, 1e-9);
    EXPECT_NEAR(result.taskIntervalSeconds, expect, 1e-9);
    EXPECT_NEAR(result.meanLatencySeconds, expect, 1e-9);
}

TEST(SimExecutor, PipelineThroughputBeatsSerial)
{
    const auto soc = quietJetson();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(4);

    SimExecConfig cfg;
    cfg.numTasks = 30;
    const SimExecutor exec(model, cfg);

    const auto serial
        = exec.execute(app, Schedule::homogeneous(4, 0));
    const auto piped
        = exec.execute(app, Schedule::fromAssignment({0, 0, 1, 1}));
    EXPECT_LT(piped.taskIntervalSeconds, serial.taskIntervalSeconds);
}

TEST(SimExecutor, SteadyStateIntervalTracksBottleneck)
{
    const auto soc = quietJetson();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(2);

    SimExecConfig cfg;
    cfg.numTasks = 40;
    const SimExecutor exec(model, cfg);
    const auto schedule = Schedule::fromAssignment({0, 1});
    const auto result = exec.execute(app, schedule);

    // The interval cannot beat the slowest chunk under full contention
    // nor be slower than it in isolation... sanity band:
    double iso_bottleneck = 0.0;
    for (int c = 0; c < 2; ++c) {
        const auto& st = app.stage(c);
        iso_bottleneck = std::max(
            iso_bottleneck,
            model.isolatedTime(st.work(),
                               schedule.chunks()[static_cast<
                                   std::size_t>(c)].pu));
    }
    EXPECT_GT(result.taskIntervalSeconds, 0.5 * iso_bottleneck);
    EXPECT_LT(result.taskIntervalSeconds, 4.0 * iso_bottleneck);
}

TEST(SimExecutor, DeterministicAcrossRuns)
{
    const platform::SocDescription soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(5);
    const SimExecutor exec(model);
    const auto s = Schedule::fromAssignment({0, 1, 1, 2, 3});
    const auto a = exec.execute(app, s);
    const auto b = exec.execute(app, s);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.taskIntervalSeconds, b.taskIntervalSeconds);
}

TEST(SimExecutor, NoiseSaltChangesMeasurement)
{
    const platform::SocDescription soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(5);
    SimExecConfig cfg;
    cfg.noiseSalt = 1;
    const SimExecutor a(model);
    const SimExecutor b(model, cfg);
    const auto s = Schedule::fromAssignment({0, 1, 1, 2, 3});
    EXPECT_NE(a.execute(app, s).makespanSeconds,
              b.execute(app, s).makespanSeconds);
}

TEST(SimExecutor, BusyFractionsBounded)
{
    const platform::SocDescription soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(6);
    const SimExecutor exec(model);
    const auto result
        = exec.execute(app, Schedule::fromAssignment({0, 0, 1, 1, 2,
                                                      3}));
    ASSERT_EQ(result.chunkBusyFraction.size(), 4u);
    for (double f : result.chunkBusyFraction) {
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0 + 1e-9);
    }
}

TEST(SimExecutor, MoreBuffersNeverSlowsSteadyState)
{
    const auto soc = quietJetson();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(4);
    SimExecConfig small_cfg;
    small_cfg.numBuffers = 1;
    SimExecConfig big_cfg;
    big_cfg.numBuffers = 6;
    const auto s = Schedule::fromAssignment({0, 0, 1, 1});
    const double t_small = SimExecutor(model, small_cfg)
                               .execute(app, s)
                               .taskIntervalSeconds;
    const double t_big = SimExecutor(model, big_cfg)
                             .execute(app, s)
                             .taskIntervalSeconds;
    EXPECT_LE(t_big, t_small + 1e-12);
}

class FunctionalSchedules : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FunctionalSchedules, SimExecutorValidatesOctreeOutputs)
{
    // Functional execution: kernels really run; outputs validated per
    // task under every chunking.
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    auto app = apps::octreeApp(apps::OctreeConfig{
        .numPoints = 2000, .withValidator = true});

    std::vector<int> assign;
    for (const char* c = GetParam(); *c; ++c)
        assign.push_back(*c - '0');
    ASSERT_EQ(assign.size(), 7u);

    SimExecConfig cfg;
    cfg.numTasks = 3;
    cfg.runKernels = true;
    const SimExecutor exec(model, cfg);
    const auto result
        = exec.execute(app, Schedule::fromAssignment(assign));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

INSTANTIATE_TEST_SUITE_P(Chunkings, FunctionalSchedules,
                         ::testing::Values("0000000", "3333333",
                                           "0003333", "0112233",
                                           "0001123"));

TEST(SimExecutor, AlexNetFunctionalOutputsValidate)
{
    const auto soc = platform::jetsonOrinNano();
    const platform::PerfModel model(soc);
    auto app = apps::alexnetDense(apps::AlexNetConfig{
        .batch = 1, .withValidator = true});

    SimExecConfig cfg;
    cfg.numTasks = 2;
    cfg.runKernels = true;
    const SimExecutor exec(model, cfg);
    const auto result = exec.execute(
        app, Schedule::fromAssignment({0, 0, 0, 0, 1, 1, 1, 1, 1}));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

TEST(SimExecutor, ClusteredOctreeInputsValidate)
{
    // Clustered point clouds generate many duplicate Morton codes,
    // exercising the dedup/compaction path heavily.
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    auto app = apps::octreeApp(apps::OctreeConfig{
        .numPoints = 3000,
        .distribution = apps::PointDistribution::Clustered,
        .numClusters = 4,
        .withValidator = true});

    SimExecConfig cfg;
    cfg.numTasks = 3;
    cfg.runKernels = true;
    const SimExecutor exec(model, cfg);
    const auto result = exec.execute(
        app, Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2}));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

TEST(SimExecutor, DenseAlexNetBatchTwoValidates)
{
    const auto soc = platform::jetsonOrinNano();
    const platform::PerfModel model(soc);
    auto app = apps::alexnetDense(apps::AlexNetConfig{
        .batch = 2, .withValidator = true});

    SimExecConfig cfg;
    cfg.numTasks = 2;
    cfg.runKernels = true;
    const SimExecutor exec(model, cfg);
    const auto result = exec.execute(
        app, Schedule::fromAssignment({1, 1, 1, 1, 1, 0, 0, 0, 0}));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

TEST(NativeExecutor, RunsOctreePipelineCorrectly)
{
    const auto soc = platform::nativeHost();
    auto app = apps::octreeApp(apps::OctreeConfig{
        .numPoints = 1500, .withValidator = true});

    NativeExecConfig cfg;
    cfg.numTasks = 4;
    const NativeExecutor exec(soc, cfg);
    const auto result
        = exec.execute(app, Schedule::fromAssignment({0, 0, 0, 1, 1, 1,
                                                      1}));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
    EXPECT_GT(result.makespanSeconds, 0.0);
    EXPECT_GT(result.taskIntervalSeconds, 0.0);
}

TEST(NativeExecutor, SparseAlexNetAcrossBothPus)
{
    const auto soc = platform::nativeHost();
    auto app = apps::alexnetSparse(apps::AlexNetConfig{
        .batch = 2, .sparse = true, .withValidator = true});

    NativeExecConfig cfg;
    cfg.numTasks = 3;
    const NativeExecutor exec(soc, cfg);
    const auto result = exec.execute(
        app, Schedule::fromAssignment({0, 0, 0, 0, 1, 1, 1, 1, 1}));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

TEST(NativeExecutor, TightQueueCapacityStillCompletes)
{
    // Backpressure path: queues of capacity 1 with several buffers.
    const auto soc = platform::nativeHost();
    auto app = apps::octreeApp(apps::OctreeConfig{
        .numPoints = 800, .withValidator = true});

    NativeExecConfig cfg;
    cfg.numTasks = 6;
    cfg.queueCapacity = 1;
    cfg.numBuffers = 3;
    const NativeExecutor exec(soc, cfg);
    const auto result = exec.execute(
        app, Schedule::fromAssignment({0, 0, 0, 1, 1, 1, 1}));
    EXPECT_TRUE(result.valid());
    EXPECT_EQ(result.tasks, 6);
}

TEST(AutoTuner, RanksByMeasuredLatency)
{
    const platform::SocDescription soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(6);

    // Hand-built candidates, deliberately in a silly predicted order.
    std::vector<Candidate> cands;
    for (const auto& assign :
         {std::vector<int>{0, 0, 0, 0, 0, 0},
          std::vector<int>{0, 0, 0, 1, 1, 1},
          std::vector<int>{0, 1, 1, 2, 3, 3}}) {
        Candidate c;
        c.schedule = Schedule::fromAssignment(assign);
        cands.push_back(c);
    }

    const SimExecutor exec(model);
    const AutoTuner tuner(exec);
    const auto report = tuner.tune(app, cands);
    ASSERT_EQ(report.all.size(), 3u);
    for (std::size_t i = 1; i < report.all.size(); ++i)
        EXPECT_GE(report.all[i].measuredLatency,
                  report.all[i - 1].measuredLatency);
    EXPECT_GT(report.campaignCostSeconds, 0.0);
    EXPECT_GE(report.autotuningGain(), 1.0);
}

TEST(BetterTogether, FullFlowProducesSpeedupOnPixelOctree)
{
    const auto soc = platform::pixel7a();
    const BetterTogether bt(soc);
    const auto report = bt.run(apps::octreeApp());

    EXPECT_EQ(report.candidates.size(), 20u);
    EXPECT_GT(report.bestLatencySeconds, 0.0);
    EXPECT_GT(report.cpuBaselineSeconds, 0.0);
    EXPECT_GT(report.gpuBaselineSeconds, 0.0);
    // The paper's headline claim, qualitatively: the heterogeneous
    // pipeline beats the best homogeneous baseline on mobile SoCs.
    EXPECT_GT(report.speedupOverBestBaseline(), 1.0);
}

TEST(BetterTogether, AutotuningNeverPicksWorseThanPredictedBest)
{
    const auto soc = platform::oneplus11();
    const BetterTogether bt(soc);
    const auto report = bt.run(apps::alexnetSparse());
    ASSERT_FALSE(report.tuning.all.empty());
    EXPECT_GE(report.tuning.autotuningGain(), 1.0 - 1e-12);
}

TEST(BetterTogether, NoAutotuneUsesPredictedBest)
{
    const auto soc = platform::jetsonOrinNano();
    BetterTogetherConfig cfg;
    cfg.autotune = false;
    const BetterTogether bt(soc, cfg);
    const auto report = bt.run(apps::alexnetDense());
    EXPECT_EQ(report.bestSchedule.compactString(),
              report.candidates.front().schedule.compactString());
}

TEST(AutoTuner, ParallelCampaignBitIdenticalAcrossThreadCounts)
{
    // The acceptance bar for parallel autotuning: the TuningReport must
    // be byte-identical at 1, 2, and 8 threads - same measured
    // latencies (bit-exact), same order, same campaign cost fold.
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();

    Profiler profiler(model);
    const auto profile = profiler.profile(app);
    Optimizer optimizer(soc, profile.interference);
    const auto candidates = optimizer.optimize();
    ASSERT_GE(candidates.size(), 2u);

    const SimExecutor exec(model);
    const AutoTuner serial(exec, 10.0, 1);
    const auto baseline = serial.tune(app, candidates);

    for (const int threads : {2, 8}) {
        const AutoTuner tuner(exec, 10.0, threads);
        const auto report = tuner.tune(app, candidates);
        ASSERT_EQ(report.all.size(), baseline.all.size())
            << threads << " threads";
        EXPECT_EQ(report.bestIndex, baseline.bestIndex);
        EXPECT_EQ(report.campaignCostSeconds,
                  baseline.campaignCostSeconds);
        for (std::size_t i = 0; i < report.all.size(); ++i) {
            EXPECT_EQ(report.all[i].measuredLatency,
                      baseline.all[i].measuredLatency);
            EXPECT_EQ(report.all[i].rankPredicted,
                      baseline.all[i].rankPredicted);
            EXPECT_EQ(
                report.all[i].candidate.schedule.toAssignment(),
                baseline.all[i].candidate.schedule.toAssignment());
            EXPECT_EQ(report.all[i].candidate.predictedLatency,
                      baseline.all[i].candidate.predictedLatency);
        }
        EXPECT_EQ(report.autotuningGain(),
                  baseline.autotuningGain());
    }
}

TEST(AutoTuner, GainRejectsReportWithoutPredictedBest)
{
    const platform::SocDescription soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = syntheticApp(4);

    Candidate c;
    c.schedule = Schedule::homogeneous(4, 0);
    const SimExecutor exec(model);
    const AutoTuner tuner(exec);
    auto report = tuner.tune(app, {c});
    EXPECT_GT(report.autotuningGain(), 0.0); // well-formed: fine
    report.all[0].rankPredicted = 3;         // drop the predicted best
    EXPECT_DEATH_IF_SUPPORTED(report.autotuningGain(),
                              "malformed TuningReport");
}

} // namespace
} // namespace bt::core
