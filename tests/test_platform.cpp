/**
 * @file
 * Unit tests for the platform models: device catalog sanity, roofline
 * behaviour of the performance model, and the interference mechanisms
 * (bandwidth contention, governor boost/throttle, LLC, timeslicing).
 */

#include <gtest/gtest.h>

#include <vector>

#include "platform/devices.hpp"
#include "platform/perf_model.hpp"

namespace bt::platform {
namespace {

WorkProfile
computeBound()
{
    return WorkProfile{1e9, 1e3, 1.0, Pattern::Dense};
}

WorkProfile
memoryBound()
{
    return WorkProfile{1e3, 1e9, 1.0, Pattern::Dense};
}

class PaperDevices : public ::testing::TestWithParam<int>
{
  protected:
    SocDescription soc = paperDevices()[static_cast<std::size_t>(
        GetParam())];
};

TEST_P(PaperDevices, ValidatesAndHasCpuAndGpu)
{
    soc.validate();
    EXPECT_GE(soc.numPus(), 2);
    EXPECT_GE(soc.gpuIndex(), 0);
    EXPECT_GE(soc.bigCpuIndex(), 0);
    EXPECT_NE(soc.gpuIndex(), soc.bigCpuIndex());
}

TEST_P(PaperDevices, GpuHasNoCoreIds)
{
    for (const auto& pu : soc.pus) {
        if (pu.kind == PuKind::Gpu)
            EXPECT_TRUE(pu.coreIds.empty());
        else
            EXPECT_EQ(pu.coreIds.size(),
                      static_cast<std::size_t>(pu.cores));
    }
}

TEST_P(PaperDevices, IsolatedTimesArePositiveAndFinite)
{
    const PerfModel model(soc);
    for (int p = 0; p < soc.numPus(); ++p) {
        for (const auto& w : {computeBound(), memoryBound()}) {
            const double t = model.isolatedTime(w, p);
            EXPECT_GT(t, 0.0);
            EXPECT_LT(t, 3600.0);
        }
    }
}

TEST_P(PaperDevices, InterferenceRatioMatchesBusyFactorDirection)
{
    // A PU whose governor boosts under load (busyFreqFactor > 1) must
    // show ratio < 1 on compute-bound work, and vice versa.
    const PerfModel model(soc);
    const auto w = computeBound();
    for (int p = 0; p < soc.numPus(); ++p) {
        const double iso = model.isolatedTime(w, p);
        const double heavy = model.interferenceHeavyTime(w, p);
        const double ratio = heavy / iso;
        const double busy = soc.pu(p).busyFreqFactor;
        if (busy > 1.0)
            EXPECT_LT(ratio, 1.0) << soc.name << " pu " << p;
        else if (busy < 1.0)
            EXPECT_GT(ratio, 1.0) << soc.name << " pu " << p;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, PaperDevices,
                         ::testing::Range(0, 4));

TEST(DeviceCatalog, FourPaperDevicesWithDistinctNames)
{
    const auto devices = paperDevices();
    ASSERT_EQ(devices.size(), 4u);
    EXPECT_EQ(devices[0].name, "Google Pixel 7a");
    EXPECT_EQ(devices[1].name, "OnePlus 11");
    EXPECT_EQ(devices[2].name, "Jetson Orin Nano");
    EXPECT_EQ(devices[3].name, "Jetson Orin Nano (LP)");
}

TEST(DeviceCatalog, PuClassCountsMatchPaper)
{
    EXPECT_EQ(pixel7a().numPus(), 4);
    EXPECT_EQ(oneplus11().numPus(), 4);
    EXPECT_EQ(jetsonOrinNano().numPus(), 2);
    EXPECT_EQ(jetsonOrinNanoLp().numPus(), 2);
}

TEST(DeviceCatalog, NativeHostValid)
{
    const auto host = nativeHost();
    host.validate();
    EXPECT_GE(host.bigCpuIndex(), 0);
    EXPECT_GE(host.gpuIndex(), 0);
}

TEST(PerfModel, MoreWorkTakesLonger)
{
    const auto soc = pixel7a();
    const PerfModel model(soc);
    WorkProfile small = computeBound();
    WorkProfile large = small;
    large.flops *= 10;
    for (int p = 0; p < soc.numPus(); ++p)
        EXPECT_GT(model.isolatedTime(large, p),
                  model.isolatedTime(small, p));
}

TEST(PerfModel, SerialFractionLimitsSpeedup)
{
    const auto soc = pixel7a();
    const PerfModel model(soc);
    WorkProfile parallel = computeBound();
    WorkProfile serial = parallel;
    serial.parallelFraction = 0.0;
    const int little = soc.findPu("little"); // 4 cores
    ASSERT_GE(little, 0);
    const double tp = model.isolatedTime(parallel, little);
    const double ts = model.isolatedTime(serial, little);
    EXPECT_NEAR(ts / tp, 4.0, 0.2); // 4 cores, negligible memory time
}

TEST(PerfModel, GpuCollapsesOnIrregularWork)
{
    const auto soc = pixel7a();
    const PerfModel model(soc);
    WorkProfile dense = computeBound();
    WorkProfile irregular = dense;
    irregular.pattern = Pattern::Irregular;
    const int gpu = soc.gpuIndex();
    // Mali: dense efficiency orders of magnitude above irregular.
    EXPECT_GT(model.isolatedTime(irregular, gpu)
                  / model.isolatedTime(dense, gpu),
              20.0);
}

TEST(PerfModel, BandwidthContentionSlowsMemoryBoundWork)
{
    // On Jetson co-running memory-bound work on both PUs must stretch
    // memory-bound time (shared DRAM + LLC degradation).
    const auto soc = jetsonOrinNano();
    const PerfModel model(soc);
    const auto w = memoryBound;
    const auto wp = w();
    std::vector<Load> both{Load{&wp, 0}, Load{&wp, 1}};
    const double together = model.timeOf(0, both);
    const double alone = model.isolatedTime(wp, 0);
    EXPECT_GT(together, alone);
}

TEST(PerfModel, ComputeBoundWorkSeesOnlyGovernorUnderMemCoRunner)
{
    const auto soc = jetsonOrinNano();
    const PerfModel model(soc);
    const auto heavy = computeBound();
    const auto mem = memoryBound();
    // CPU compute-bound vs GPU memory-bound: the CPU slows only via
    // its governor (throttle), not via bandwidth.
    std::vector<Load> both{Load{&heavy, 0}, Load{&mem, 1}};
    const double together = model.timeOf(0, both);
    const double alone = model.isolatedTime(heavy, 0);
    const double gov = soc.pu(0).busyFreqFactor;
    EXPECT_NEAR(together / alone, 1.0 / gov, 0.05);
}

TEST(PerfModel, TimeslicingSamePuStretchesBoth)
{
    const auto soc = pixel7a();
    const PerfModel model(soc);
    const auto w = computeBound();
    std::vector<Load> two{Load{&w, 2}, Load{&w, 2}};
    const double shared = model.timeOf(0, two);
    const double alone = model.isolatedTime(w, 2);
    EXPECT_NEAR(shared / alone, 2.0, 0.01);
}

TEST(PerfModel, EffectiveFreqStepsWithLoad)
{
    const auto soc = pixel7a();
    const PerfModel model(soc);
    const int gpu = soc.gpuIndex();
    const double f0 = model.effectiveFreqGhz(gpu, 0);
    const double f1 = model.effectiveFreqGhz(gpu, 1);
    const double f3 = model.effectiveFreqGhz(gpu, 3);
    // Mali boosts under load: a step as soon as any other PU is busy.
    EXPECT_LT(f0, f1);
    EXPECT_DOUBLE_EQ(f1, f3);
    EXPECT_NEAR(f3, soc.pu(gpu).freqGhz * soc.pu(gpu).busyFreqFactor,
                1e-12);
}

TEST(PerfModel, DispatchOverheadDominatesTinyKernels)
{
    const auto soc = pixel7a();
    const PerfModel model(soc);
    WorkProfile tiny{1.0, 1.0, 1.0, Pattern::Dense};
    const int gpu = soc.gpuIndex();
    EXPECT_NEAR(model.isolatedTime(tiny, gpu),
                soc.pu(gpu).dispatchOverheadUs * 1e-6, 1e-7);
}

TEST(WorkProfile, FusionAddsWorkAndBlendsAmdahl)
{
    WorkProfile a{100.0, 10.0, 1.0, Pattern::Dense};
    WorkProfile b{300.0, 30.0, 0.5, Pattern::Sparse};
    const WorkProfile f = a.fusedWith(b);
    EXPECT_DOUBLE_EQ(f.flops, 400.0);
    EXPECT_DOUBLE_EQ(f.bytes, 40.0);
    EXPECT_GT(f.parallelFraction, 0.5);
    EXPECT_LT(f.parallelFraction, 1.0);
    EXPECT_EQ(f.pattern, Pattern::Sparse); // b dominates by flops
}

TEST(Soc, FindPuAndLabels)
{
    const auto soc = pixel7a();
    EXPECT_EQ(soc.findPu("gpu"), 3);
    EXPECT_EQ(soc.findPu("big"), 2);
    EXPECT_EQ(soc.findPu("nope"), -1);
}

TEST(Soc, PatternNames)
{
    EXPECT_STREQ(patternName(Pattern::Dense), "dense");
    EXPECT_STREQ(patternName(Pattern::Sparse), "sparse");
    EXPECT_STREQ(patternName(Pattern::Irregular), "irregular");
    EXPECT_STREQ(patternName(Pattern::Mixed), "mixed");
}

} // namespace
} // namespace bt::platform
