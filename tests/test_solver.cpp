/**
 * @file
 * Unit and property tests for the 0/1 constraint solver: each
 * constraint kind, minimization, enumeration, unsatisfiable cases, and
 * a randomized cross-check against brute-force enumeration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "solver/model.hpp"
#include "solver/solver.hpp"

namespace bt::solver {
namespace {

TEST(Solver, EmptyModelHasOneSolution)
{
    Model m;
    Solver s(m);
    EXPECT_EQ(s.countSolutions(), 1u);
}

TEST(Solver, UnitClauseForcesValue)
{
    Model m;
    const Var a = m.newVar("a");
    m.addUnit(pos(a));
    Solver s(m);
    auto sol = s.solve();
    ASSERT_TRUE(sol.has_value());
    EXPECT_TRUE(sol->value(a));
}

TEST(Solver, ContradictionIsUnsat)
{
    Model m;
    const Var a = m.newVar();
    m.addUnit(pos(a));
    m.addUnit(neg(a));
    Solver s(m);
    EXPECT_FALSE(s.solve().has_value());
    EXPECT_EQ(s.countSolutions(), 0u);
}

TEST(Solver, EmptyClauseIsUnsat)
{
    Model m;
    m.newVar();
    m.addClause({});
    Solver s(m);
    EXPECT_FALSE(s.solve().has_value());
}

TEST(Solver, ExactlyOneCounts)
{
    Model m;
    std::vector<Var> vars;
    for (int i = 0; i < 5; ++i)
        vars.push_back(m.newVar());
    m.addExactlyOne(vars);
    Solver s(m);
    EXPECT_EQ(s.countSolutions(), 5u);
}

TEST(Solver, AtMostOneCounts)
{
    Model m;
    std::vector<Var> vars;
    for (int i = 0; i < 4; ++i)
        vars.push_back(m.newVar());
    m.addAtMostOne(vars);
    Solver s(m);
    EXPECT_EQ(s.countSolutions(), 5u); // none or one of four
}

TEST(Solver, ImplicationChainsPropagate)
{
    Model m;
    const Var a = m.newVar(), b = m.newVar(), c = m.newVar();
    m.addImplication({pos(a)}, pos(b));
    m.addImplication({pos(b)}, pos(c));
    m.addUnit(pos(a));
    Solver s(m);
    auto sol = s.solve();
    ASSERT_TRUE(sol.has_value());
    EXPECT_TRUE(sol->value(b));
    EXPECT_TRUE(sol->value(c));
}

TEST(Solver, TwoAntecedentImplication)
{
    Model m;
    const Var a = m.newVar(), b = m.newVar(), c = m.newVar();
    m.addImplication({pos(a), pos(b)}, pos(c));
    m.addUnit(pos(a));
    m.addUnit(pos(b));
    m.addUnit(neg(c));
    Solver s(m);
    EXPECT_FALSE(s.solve().has_value());
}

TEST(Solver, LinearLeBoundsSum)
{
    Model m;
    std::vector<PbTerm> terms;
    std::vector<Var> vars;
    for (int i = 0; i < 4; ++i) {
        vars.push_back(m.newVar());
        terms.push_back(PbTerm{pos(vars.back()), 3});
    }
    m.addLinearLe(terms, 6); // at most two can be true
    Solver s(m);
    // C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11
    EXPECT_EQ(s.countSolutions(), 11u);
}

TEST(Solver, LinearGeForcesSelection)
{
    Model m;
    std::vector<PbTerm> terms;
    std::vector<Var> vars;
    for (int i = 0; i < 3; ++i) {
        vars.push_back(m.newVar());
        terms.push_back(PbTerm{pos(vars.back()), 2});
    }
    m.addLinearGe(terms, 4); // at least two true
    Solver s(m);
    EXPECT_EQ(s.countSolutions(), 4u); // C(3,2)+C(3,3)
}

TEST(Solver, LinearOverNegatedLiterals)
{
    Model m;
    const Var a = m.newVar(), b = m.newVar();
    // (!a) + (!b) <= 1 : at least one of a, b must hold.
    m.addLinearLe({PbTerm{neg(a), 1}, PbTerm{neg(b), 1}}, 1);
    Solver s(m);
    EXPECT_EQ(s.countSolutions(), 3u);
}

TEST(Solver, MinimizeCallbackFindsOptimum)
{
    Model m;
    std::vector<Var> vars;
    for (int i = 0; i < 4; ++i)
        vars.push_back(m.newVar());
    m.addExactlyOne(vars);
    const double costs[4] = {5.0, 2.0, 7.0, 3.0};
    Solver s(m);
    auto best = s.minimize([&](const Assignment& a) {
        for (int i = 0; i < 4; ++i)
            if (a.value(vars[static_cast<std::size_t>(i)]))
                return costs[i];
        return 1e9;
    });
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(best->value(vars[1]));
}

TEST(Solver, BlockingClauseEnumeratesDistinct)
{
    Model m;
    std::vector<Var> vars;
    for (int i = 0; i < 3; ++i)
        vars.push_back(m.newVar());
    m.addExactlyOne(vars);

    std::set<int> seen;
    for (int round = 0; round < 3; ++round) {
        Solver s(m);
        auto sol = s.solve();
        ASSERT_TRUE(sol.has_value());
        int which = -1;
        std::vector<Lit> block;
        for (int i = 0; i < 3; ++i) {
            if (sol->value(vars[static_cast<std::size_t>(i)])) {
                which = i;
                block.push_back(neg(vars[static_cast<std::size_t>(i)]));
            }
        }
        EXPECT_TRUE(seen.insert(which).second);
        m.addClause(block);
    }
    Solver s(m);
    EXPECT_FALSE(s.solve().has_value());
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Solver, ForEachSolutionStopsWhenAsked)
{
    Model m;
    for (int i = 0; i < 6; ++i)
        m.newVar();
    Solver s(m);
    int visited = 0;
    s.forEachSolution([&](const Assignment&) {
        ++visited;
        return visited < 5;
    });
    EXPECT_EQ(visited, 5);
}

/** Brute-force evaluation of a model over all 2^n assignments. */
std::uint64_t
bruteForceCount(const Model& m)
{
    const int n = m.numVars();
    std::uint64_t count = 0;
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        std::vector<bool> vals(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v)
            vals[static_cast<std::size_t>(v)] = (bits >> v) & 1;
        const Assignment a(vals);

        bool ok = true;
        for (const auto& clause : m.clauses()) {
            bool sat = clause.empty() ? false : false;
            for (const auto& lit : clause)
                sat = sat || a.value(lit);
            if (!sat) {
                ok = false;
                break;
            }
        }
        for (const auto& group : m.exactlyOnes()) {
            int trues = 0;
            for (Var v : group)
                trues += a.value(v);
            if (trues != 1)
                ok = false;
        }
        for (const auto& group : m.atMostOnes()) {
            int trues = 0;
            for (Var v : group)
                trues += a.value(v);
            if (trues > 1)
                ok = false;
        }
        for (const auto& le : m.linearLes()) {
            std::int64_t sum = 0;
            for (const auto& t : le.terms)
                if (a.value(t.lit))
                    sum += t.coeff;
            if (sum > le.bound)
                ok = false;
        }
        count += ok;
    }
    return count;
}

class SolverRandomInstances : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverRandomInstances, CountMatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    Model m;
    const int n = 3 + static_cast<int>(rng.nextBounded(8)); // 3..10
    std::vector<Var> vars;
    for (int i = 0; i < n; ++i)
        vars.push_back(m.newVar());

    auto randomLit = [&] {
        const Var v
            = vars[static_cast<std::size_t>(rng.nextBounded(
                static_cast<std::uint64_t>(n)))];
        return rng.nextBounded(2) ? pos(v) : neg(v);
    };

    const int clauses = static_cast<int>(rng.nextBounded(5));
    for (int c = 0; c < clauses; ++c) {
        std::vector<Lit> lits;
        const int len = 1 + static_cast<int>(rng.nextBounded(3));
        for (int l = 0; l < len; ++l)
            lits.push_back(randomLit());
        m.addClause(lits);
    }
    if (rng.nextBounded(2)) {
        std::vector<Var> group(vars.begin(),
                               vars.begin() + std::min(n, 4));
        m.addExactlyOne(group);
    }
    if (rng.nextBounded(2)) {
        std::vector<PbTerm> terms;
        for (int i = 0; i < std::min(n, 5); ++i)
            terms.push_back(PbTerm{
                randomLit(),
                static_cast<std::int64_t>(1 + rng.nextBounded(4))});
        m.addLinearLe(terms,
                      static_cast<std::int64_t>(rng.nextBounded(8)));
    }

    Solver s(m);
    EXPECT_EQ(s.countSolutions(), bruteForceCount(m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverRandomInstances,
                         ::testing::Range(0, 25));

} // namespace
} // namespace bt::solver
