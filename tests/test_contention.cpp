/**
 * @file
 * Tests for the shared DRAM-contention model and everything that
 * consumes it: ContentionModel/ContentionProfile quantization and
 * demand math, PerfModel's delegation and overload forwarding
 * (bit-exactness), bucketed ScheduleEvaluator predictions, the
 * optimizer's C6 aggregate-bandwidth constraint family (solver =
 * exhaustive = memoized, budget respected, infeasible budgets relaxed,
 * single-tenant byte-identity), the service's contention-aware
 * two-tenant planning on the bandwidth-starved contention rig, and
 * agreement between the planner's stretched predictions and both time
 * backends under ambient co-runner demand.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/application.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/schedule_eval.hpp"
#include "core/sim_executor.hpp"
#include "platform/contention.hpp"
#include "platform/devices.hpp"
#include "platform/perf_model.hpp"
#include "runtime/host_backend.hpp"
#include "service/service.hpp"

namespace bt::core {
namespace {

// ---------------------------------------------------------------------
// Fixtures: synthetic pipelines on the bandwidth-starved contention
// rig. The memory block (m1, m2) saturates whichever link it lands on;
// c1 is a small compute tail. MemHeavy moves twice the bytes of
// MemLight, so the two-tenant scenarios are asymmetric.

Application
memPipeline(const std::string& name, double byte_scale)
{
    Application app(name, "buffer", "synthetic memory-bound");
    const auto add = [&](const char* sname, double flops,
                         double bytes) {
        platform::WorkProfile w;
        w.flops = flops;
        w.bytes = bytes;
        w.parallelFraction = 1.0;
        w.pattern = platform::Pattern::Dense;
        app.addStage(Stage(sname, w, [](KernelCtx&) {}, nullptr));
    };
    add("m1", 2e5, 8e5 * byte_scale);
    add("m2", 1e5, 6e5 * byte_scale);
    add("c1", 2e5, 1e3);
    return app;
}

Application
memHeavy()
{
    return memPipeline("MemHeavy", 1.0);
}

Application
memLight()
{
    return memPipeline("MemLight", 0.5);
}

std::vector<platform::WorkProfile>
worksOf(const Application& app)
{
    std::vector<platform::WorkProfile> works;
    for (const auto& stage : app.stages())
        works.push_back(stage.work());
    return works;
}

/** Aggregate DRAM demand (GB/s) a schedule draws, from first
 *  principles via the application's analytic contention profile. */
double
demandOf(const platform::SocDescription& soc, const Application& app,
         const Schedule& schedule)
{
    const platform::PerfModel model(soc);
    const auto works = worksOf(app);
    const platform::ContentionProfile profile
        = model.contention().profileStages(model, works);
    return static_cast<double>(profile.aggregateDemandMilli(
               schedule.toAssignment()))
        / 1000.0;
}

/** Profiled fixture shared by the evaluator/optimizer tests. */
class ContentionRig : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        soc = platform::contentionRig();
        model = std::make_unique<platform::PerfModel>(soc);
        app = std::make_unique<Application>(memHeavy());
        Profiler profiler(*model);
        result = profiler.profile(*app);
    }

    platform::SocDescription soc;
    std::unique_ptr<platform::PerfModel> model;
    std::unique_ptr<Application> app;
    ProfileResult result;
};

// ---------------------------------------------------------------------
// ContentionModel / ContentionProfile units.

TEST(ContentionModel, MilliQuantizationRoundsToNearest)
{
    EXPECT_EQ(platform::ContentionModel::milliGbps(0.0), 0);
    EXPECT_EQ(platform::ContentionModel::milliGbps(1.0), 1000);
    EXPECT_EQ(platform::ContentionModel::milliGbps(1.2345), 1235);
    EXPECT_EQ(platform::ContentionModel::milliGbps(4.7999), 4800);
}

TEST(ContentionModel, BucketsAreConservativeAndMonotone)
{
    const auto soc = platform::contentionRig();
    const platform::ContentionModel model(soc);
    const double roofline = model.rooflineGbps();
    EXPECT_DOUBLE_EQ(roofline, 10.0);

    EXPECT_EQ(model.bucketOf(0.0), 0);
    EXPECT_DOUBLE_EQ(model.bucketCeilingGbps(0), 0.0);

    int prev = 0;
    for (double g = 0.1; g <= roofline + 2.0; g += 0.1) {
        const int b = model.bucketOf(g);
        EXPECT_GE(b, 1);
        EXPECT_LT(b, platform::ContentionModel::kBuckets);
        EXPECT_GE(b, prev); // monotone in demand
        // Conservative: the bucket ceiling never understates demand.
        EXPECT_GE(model.bucketCeilingGbps(b) + 1e-12,
                  std::min(g, roofline));
        prev = b;
    }
    // The top bucket's ceiling is the roofline itself.
    EXPECT_DOUBLE_EQ(model.bucketCeilingGbps(
                         platform::ContentionModel::kBuckets - 1),
                     roofline);
}

TEST(ContentionModel, ProfileDemandMatchesLinkTimesIntensity)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto app = memHeavy();
    const auto works = worksOf(app);
    const platform::ContentionProfile profile
        = model.contention().profileStages(model, works);

    ASSERT_EQ(profile.numStages, app.numStages());
    ASSERT_EQ(profile.numPus, soc.numPus());
    ASSERT_EQ(profile.numBuckets, platform::ContentionModel::kBuckets);
    for (int s = 0; s < profile.numStages; ++s) {
        for (int p = 0; p < profile.numPus; ++p) {
            const double expected = model.contention().demandGbps(
                works[static_cast<std::size_t>(s)], soc.pu(p));
            EXPECT_DOUBLE_EQ(profile.demandGbps(s, p), expected);
            EXPECT_EQ(profile.demandMilli(s, p),
                      platform::ContentionModel::milliGbps(expected));
        }
    }
    // The memory block saturates every link it lands on; the compute
    // tail draws almost nothing.
    EXPECT_DOUBLE_EQ(profile.demandGbps(0, 0), 4.8); // m1 on littleA
    EXPECT_DOUBLE_EQ(profile.demandGbps(0, 2), 6.0); // m1 on big
    EXPECT_DOUBLE_EQ(profile.demandGbps(0, 3), 12.0); // m1 on gpu
    EXPECT_LT(profile.demandGbps(2, 2), 1.0);         // c1 on big
}

TEST(ContentionModel, StretchIsOneAtBucketZeroAndTracksHeavyTime)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto works = worksOf(memHeavy());
    const platform::ContentionProfile profile
        = model.contention().profileStages(model, works);

    for (int s = 0; s < profile.numStages; ++s) {
        for (int p = 0; p < profile.numPus; ++p) {
            EXPECT_DOUBLE_EQ(profile.stretch(s, p, 0), 1.0);
            double prev = 1.0;
            for (int b = 1; b < profile.numBuckets; ++b) {
                const double stretch = profile.stretch(s, p, b);
                // Exactly the interference-heavy slowdown under the
                // bucket's ceiling demand - the number timeOf folds.
                const auto& w = works[static_cast<std::size_t>(s)];
                EXPECT_DOUBLE_EQ(
                    stretch,
                    model.interferenceHeavyTime(
                        w, p, profile.bucketCeilingGbps(b))
                        / model.interferenceHeavyTime(w, p));
                EXPECT_GE(stretch + 1e-12, prev); // monotone
                prev = stretch;
            }
        }
    }
    // Memory-bound work on the little cores stretches visibly under a
    // saturating ambient; the compute tail on big barely moves.
    EXPECT_GT(profile.stretch(0, 0, profile.numBuckets - 1), 1.10);
    EXPECT_LT(profile.stretch(2, 2, profile.numBuckets - 1), 1.02);
}

TEST(ContentionModel, AggregateDemandSumsTheHungriestStagePerPu)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto works = worksOf(memHeavy());
    const platform::ContentionProfile profile
        = model.contention().profileStages(model, works);

    // {m1, m2} on littleA, {c1} on big: littleA draws its hungriest
    // stage (not the sum), big draws the compute tail.
    const std::vector<int> assign{0, 0, 2};
    const std::int64_t expected
        = std::max(profile.demandMilli(0, 0), profile.demandMilli(1, 0))
        + profile.demandMilli(2, 2);
    EXPECT_EQ(profile.aggregateDemandMilli(assign), expected);

    // Single-PU schedules draw exactly their hungriest stage.
    const std::vector<int> gpuOnly{3, 3, 3};
    EXPECT_EQ(profile.aggregateDemandMilli(gpuOnly),
              std::max({profile.demandMilli(0, 3),
                        profile.demandMilli(1, 3),
                        profile.demandMilli(2, 3)}));
}

// ---------------------------------------------------------------------
// PerfModel: overload forwarding is bit-exact; ambient demand only
// affects memory-bound work.

TEST(PerfModelForwarding, TimeOfOverloadsAreBitIdentical)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto works = worksOf(memHeavy());

    // All three stages co-running on distinct PUs.
    std::vector<platform::Load> loads{
        {&works[0], 0}, {&works[1], 2}, {&works[2], 3}};
    const std::vector<double> clocks{1.0, 1.0, 0.9, 1.0};
    for (std::size_t i = 0; i < loads.size(); ++i) {
        EXPECT_DOUBLE_EQ(model.timeOf(i, loads),
                         model.timeOf(i, loads, {}));
        EXPECT_DOUBLE_EQ(model.timeOf(i, loads),
                         model.timeOf(i, loads, {}, 0.0));
        EXPECT_DOUBLE_EQ(model.timeOf(i, loads, clocks),
                         model.timeOf(i, loads, clocks, 0.0));
    }
    for (int p = 0; p < soc.numPus(); ++p)
        for (const auto& w : works)
            EXPECT_DOUBLE_EQ(model.interferenceHeavyTime(w, p),
                             model.interferenceHeavyTime(w, p, 0.0));
}

TEST(PerfModelForwarding, AmbientSlowsMemoryBoundWorkOnly)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto works = worksOf(memHeavy());

    // m1 on littleA is memory bound: ambient traffic stretches it.
    EXPECT_GT(model.interferenceHeavyTime(works[0], 0, 10.0),
              model.interferenceHeavyTime(works[0], 0));
    // c1 on big is compute bound: its (scaled) memory leg stays hidden
    // under max(comp, mem), so the time is bit-identical.
    EXPECT_DOUBLE_EQ(model.interferenceHeavyTime(works[2], 2, 10.0),
                     model.interferenceHeavyTime(works[2], 2));
}

// ---------------------------------------------------------------------
// ScheduleEvaluator: bucketed predictions.

TEST_F(ContentionRig, EvaluatorBucketZeroIgnoresTheProfile)
{
    ScheduleEvaluator plain(soc, result.interference, *model);
    ScheduleEvaluator bucketed(soc, result.interference, *model,
                               &result.contention);

    const std::vector<std::vector<int>> assigns{
        {0, 0, 0}, {0, 0, 2}, {0, 2, 2}, {3, 3, 3}, {1, 1, 3}};
    for (const auto& a : assigns) {
        const Prediction& lhs = plain.predict(a);
        const Prediction rhs = bucketed.predict(a); // copy before next
        EXPECT_DOUBLE_EQ(lhs.latency, rhs.latency);
        EXPECT_DOUBLE_EQ(lhs.gapness, rhs.gapness);
        EXPECT_DOUBLE_EQ(lhs.energyJ, rhs.energyJ);
        EXPECT_EQ(lhs.numChunks, rhs.numChunks);
        // The contention-aware instance also accounts demand.
        EXPECT_EQ(rhs.demandMilli,
                  result.contention.aggregateDemandMilli(a));
        EXPECT_DOUBLE_EQ(rhs.demandGbps,
                         static_cast<double>(rhs.demandMilli) / 1000.0);
    }
}

TEST_F(ContentionRig, EvaluatorBucketsMatchAManuallyStretchedTable)
{
    const int bucket = 4;
    // Stretch the interference table by hand, cell by cell.
    ProfilingTable stretched(result.interference.stages(),
                             result.interference.pus());
    for (int s = 0; s < result.interference.numStages(); ++s) {
        for (int p = 0; p < result.interference.numPus(); ++p) {
            stretched.set(s, p,
                          result.interference.at(s, p)
                              * result.contention.stretch(s, p, bucket));
            stretched.setStddev(s, p,
                                result.interference.stddevAt(s, p));
        }
    }
    ScheduleEvaluator manual(soc, stretched, *model);
    ScheduleEvaluator bucketed(soc, result.interference, *model,
                               &result.contention);

    const std::vector<std::vector<int>> assigns{
        {0, 0, 0}, {0, 0, 2}, {0, 2, 2}, {3, 3, 3}, {2, 2, 3}};
    for (const auto& a : assigns) {
        const Prediction& lhs = manual.predict(a);
        const Prediction rhs = bucketed.predict(a, bucket);
        EXPECT_DOUBLE_EQ(lhs.latency, rhs.latency);
        EXPECT_DOUBLE_EQ(lhs.gapness, rhs.gapness);
        EXPECT_DOUBLE_EQ(lhs.energyJ, rhs.energyJ);
        // Demand is a property of the assignment, not the bucket.
        EXPECT_EQ(rhs.demandMilli,
                  result.contention.aggregateDemandMilli(a));
        EXPECT_EQ(rhs.demandMilli, bucketed.predict(a, 0).demandMilli);
    }
}

// ---------------------------------------------------------------------
// Optimizer: the C6 aggregate-bandwidth constraint family.

TEST_F(ContentionRig, C6EnginesAndMemoizationAgree)
{
    PlannerSpec cfg;
    cfg.contention.budgetGbps = 5.0;
    cfg.contention.ambientGbps = 5.0;
    cfg.contentionProfile = &result.contention;

    PlannerSpec brute = cfg;
    brute.engine = PlannerEngine::Exhaustive;
    PlannerSpec unmemoized = cfg;
    unmemoized.memoize = false;

    Optimizer a(soc, result.interference, cfg);
    Optimizer b(soc, result.interference, brute);
    Optimizer c(soc, result.interference, unmemoized);
    const auto ca = a.optimize();
    const auto cb = b.optimize();
    const auto cc = c.optimize();

    ASSERT_FALSE(ca.empty());
    ASSERT_EQ(ca.size(), cb.size());
    ASSERT_EQ(ca.size(), cc.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].schedule, cb[i].schedule) << "rank " << i;
        EXPECT_EQ(ca[i].schedule, cc[i].schedule) << "rank " << i;
        EXPECT_DOUBLE_EQ(ca[i].predictedLatency, cb[i].predictedLatency);
        EXPECT_DOUBLE_EQ(ca[i].predictedLatency, cc[i].predictedLatency);
        EXPECT_DOUBLE_EQ(ca[i].predictedDemandGbps,
                         cb[i].predictedDemandGbps);
    }
}

TEST_F(ContentionRig, C6CandidatesRespectTheBudget)
{
    PlannerSpec cfg;
    cfg.contention.budgetGbps = 5.0;
    cfg.contentionProfile = &result.contention;
    Optimizer opt(soc, result.interference, cfg);
    const auto cands = opt.optimize();
    ASSERT_FALSE(cands.empty());
    EXPECT_DOUBLE_EQ(opt.stats().demandBudgetGbps, 5.0);
    EXPECT_FALSE(opt.stats().c6Relaxed);
    for (const auto& c : cands) {
        EXPECT_LE(c.predictedDemandGbps, 5.0 + 1e-9)
            << c.schedule.compactString();
        // The reported demand is the profile's exact accounting.
        EXPECT_DOUBLE_EQ(c.predictedDemandGbps,
                         demandOf(soc, *app, c.schedule));
    }
}

TEST_F(ContentionRig, WithoutC6ThePlannerOversubscribes)
{
    // The whole point of the rig: unconstrained latency optimization
    // puts memory-block stages on the fat links.
    PlannerSpec cfg;
    cfg.contentionProfile = &result.contention;
    Optimizer opt(soc, result.interference, cfg);
    const auto cands = opt.optimize();
    ASSERT_FALSE(cands.empty());
    EXPECT_DOUBLE_EQ(opt.stats().demandBudgetGbps, 0.0);
    EXPECT_GT(cands.front().predictedDemandGbps, 5.0);
}

TEST_F(ContentionRig, InfeasibleBudgetRelaxesC6InsteadOfFailing)
{
    // Even the frugalest single-chunk schedule draws 4.8 GB/s; a
    // budget below that cannot be honored.
    PlannerSpec cfg;
    cfg.contention.budgetGbps = 0.5;
    cfg.contentionProfile = &result.contention;
    Optimizer relaxed(soc, result.interference, cfg);
    const auto cands = relaxed.optimize();
    ASSERT_FALSE(cands.empty());
    EXPECT_TRUE(relaxed.stats().c6Relaxed);
    EXPECT_DOUBLE_EQ(relaxed.stats().demandBudgetGbps, 0.0);

    // Relaxation means: plan exactly as if C6 were off.
    PlannerSpec off_cfg;
    off_cfg.contentionProfile = &result.contention;
    Optimizer off(soc, result.interference, off_cfg);
    const auto base = off.optimize();
    ASSERT_EQ(cands.size(), base.size());
    for (std::size_t i = 0; i < cands.size(); ++i)
        EXPECT_EQ(cands[i].schedule, base[i].schedule);
}

TEST_F(ContentionRig, DefaultContentionConfigIsByteIdentical)
{
    // A contention profile with all-default knobs must not perturb a
    // single bit of the contention-unaware planner's output.
    PlannerSpec aware;
    aware.contentionProfile = &result.contention;
    Optimizer with(soc, result.interference, aware);
    Optimizer without(soc, result.interference, {});
    const auto a = with.optimize();
    const auto b = without.optimize();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].schedule, b[i].schedule) << "rank " << i;
        EXPECT_DOUBLE_EQ(a[i].predictedLatency, b[i].predictedLatency);
        EXPECT_DOUBLE_EQ(a[i].predictedGapness, b[i].predictedGapness);
        EXPECT_DOUBLE_EQ(a[i].predictedEnergyJ, b[i].predictedEnergyJ);
    }
}

TEST_F(ContentionRig, RealTimeTenantPlansAtBucketZero)
{
    PlannerSpec ambient;
    ambient.contention.budgetGbps = 5.0;
    ambient.contention.ambientGbps = 5.0;
    ambient.contentionProfile = &result.contention;
    PlannerSpec rt = ambient;
    rt.contention.realTime = true;
    PlannerSpec quiet;
    quiet.contention.budgetGbps = 5.0;
    quiet.contentionProfile = &result.contention;

    Optimizer rtOpt(soc, result.interference, rt);
    Optimizer quietOpt(soc, result.interference, quiet);
    Optimizer ambientOpt(soc, result.interference, ambient);
    const auto rtCands = rtOpt.optimize();
    const auto quietCands = quietOpt.optimize();
    const auto ambientCands = ambientOpt.optimize();

    // Real-time: ambient is ignored, so the plan equals the quiet one.
    ASSERT_EQ(rtCands.size(), quietCands.size());
    for (std::size_t i = 0; i < rtCands.size(); ++i) {
        EXPECT_EQ(rtCands[i].schedule, quietCands[i].schedule);
        EXPECT_DOUBLE_EQ(rtCands[i].predictedLatency,
                         quietCands[i].predictedLatency);
    }
    // A best-effort tenant under the same ambient predicts slower
    // (memory-bound fixture: the stretch is real).
    EXPECT_GT(ambientCands.front().predictedLatency,
              quietCands.front().predictedLatency);
}

// ---------------------------------------------------------------------
// Service: contention-aware two-tenant planning.

service::ServiceConfig
rigConfig(bool contention_aware)
{
    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.run.numTasks = 6;
    cfg.profiler.repetitions = 3;
    cfg.contentionAware = contention_aware;
    return cfg;
}

TEST(ServiceContention, TwoTenantPlansStayUnderTheRoofline)
{
    const auto soc = platform::contentionRig();
    const double roofline = soc.mem.dramBwGbps;

    service::Service aware(soc, rigConfig(true));
    aware.registerApp(memHeavy());
    aware.registerApp(memLight());
    const auto planA = aware.freshPlan("MemHeavy", 0, 0, 2);
    const auto planB = aware.freshPlan("MemLight", 0, 1, 2);

    // Each tenant stays within its equal share; together they fit
    // under the roofline, so nobody gets throttled.
    EXPECT_LE(planA.predictedDemandGbps, roofline / 2 + 1e-9);
    EXPECT_LE(planB.predictedDemandGbps, roofline / 2 + 1e-9);
    EXPECT_GT(planA.predictedDemandGbps, 0.0);
    EXPECT_LE(planA.predictedDemandGbps + planB.predictedDemandGbps,
              roofline + 1e-9);

    // The PR6-style planner (blind disjoint leases) oversubscribes:
    // both tenants grab their fattest link.
    service::Service blind(soc, rigConfig(false));
    blind.registerApp(memHeavy());
    blind.registerApp(memLight());
    const auto blindA = blind.freshPlan("MemHeavy", 0, 0, 2);
    const auto blindB = blind.freshPlan("MemLight", 0, 1, 2);
    const double blindDemand
        = demandOf(soc, memHeavy(), blindA.schedule)
        + demandOf(soc, memLight(), blindB.schedule);
    EXPECT_GT(blindDemand, roofline);
}

TEST(ServiceContention, WorstTenantCoRunLatencyImproves)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);

    service::Service aware(soc, rigConfig(true));
    aware.registerApp(memHeavy());
    aware.registerApp(memLight());
    service::Service blind(soc, rigConfig(false));
    blind.registerApp(memHeavy());
    blind.registerApp(memLight());

    // Score a tenant's plan under the co-runner demand its partner's
    // plan actually draws - the honest co-run latency: replay the
    // plan on the virtual backend with the partner's aggregate
    // bandwidth as ambient traffic.
    const auto coRunLatency = [&](const Application& app,
                                  const Schedule& plan,
                                  double partner_demand) {
        SimExecConfig cfg;
        cfg.numTasks = 24;
        cfg.ambientBandwidthGbps = partner_demand;
        return SimExecutor(model, cfg)
            .execute(app, plan)
            .taskIntervalSeconds;
    };
    const auto worstOf = [&](service::Service& svc) {
        const auto heavy = svc.freshPlan("MemHeavy", 0, 0, 2);
        const auto light = svc.freshPlan("MemLight", 0, 1, 2);
        const double dHeavy
            = demandOf(soc, memHeavy(), heavy.schedule);
        const double dLight
            = demandOf(soc, memLight(), light.schedule);
        return std::max(
            coRunLatency(memHeavy(), heavy.schedule, dLight),
            coRunLatency(memLight(), light.schedule, dHeavy));
    };

    const double awareWorst = worstOf(aware);
    const double blindWorst = worstOf(blind);
    EXPECT_LT(awareWorst, blindWorst);
}

TEST(ServiceContention, SingleTenantPlansAreByteIdenticalEitherWay)
{
    const auto soc = platform::contentionRig();
    service::Service aware(soc, rigConfig(true));
    aware.registerApp(memHeavy());
    service::Service blind(soc, rigConfig(false));
    blind.registerApp(memHeavy());

    // One lease group = whole SoC, no co-runners: the contention
    // machinery must be inert.
    EXPECT_EQ(aware.keyFor("MemHeavy", 0, 0, 1).bandwidthBucket, 0);
    const auto a = aware.freshPlan("MemHeavy", 0, 0, 1);
    const auto b = blind.freshPlan("MemHeavy", 0, 0, 1);
    EXPECT_EQ(a.schedule, b.schedule);
    EXPECT_DOUBLE_EQ(a.predictedLatencySeconds,
                     b.predictedLatencySeconds);
}

TEST(ServiceContention, RealTimeTenantIsThrottleProtected)
{
    const auto soc = platform::contentionRig();
    service::Service svc(soc, rigConfig(true));
    svc.registerApp(memHeavy(), service::TenantOptions{.realTime = true});
    svc.registerApp(memLight());

    // The RT tenant's cache key pins bucket 0 (it plans and runs
    // unthrottled); the best-effort co-tenant absorbs the ambient.
    EXPECT_EQ(svc.keyFor("MemHeavy", 0, 0, 2).bandwidthBucket, 0);
    EXPECT_GT(svc.keyFor("MemLight", 0, 1, 2).bandwidthBucket, 0);

    // Its plan still honors the C6 budget share.
    const auto rtPlan = svc.freshPlan("MemHeavy", 0, 0, 2);
    EXPECT_LE(rtPlan.predictedDemandGbps,
              soc.mem.dramBwGbps / 2 + 1e-9);
}

TEST(ServiceContention, TwoTenantsServeEndToEnd)
{
    const auto soc = platform::contentionRig();
    auto cfg = rigConfig(true);
    cfg.queueCapacity = 64;
    service::Service svc(soc, cfg);
    svc.registerApp(memHeavy());
    svc.registerApp(memLight());
    svc.start();
    int admitted = 0;
    for (int i = 0; i < 24; ++i)
        if (svc.submit({i % 2, i % 2 == 0 ? "MemHeavy" : "MemLight",
                        nullptr}))
            ++admitted;
    svc.drain();
    const auto report = svc.report();
    svc.stop();
    EXPECT_EQ(report.completed, admitted);
    EXPECT_EQ(report.failed, 0);
}

// ---------------------------------------------------------------------
// Backends: the same contention model replays at run time.

TEST_F(ContentionRig, VirtualBackendTracksThePredictedStretch)
{
    // The ambient's *relative* effect on the virtual-time makespan must
    // agree with the stretched-table prediction (the absolute level
    // differs by design: the DES models instantaneous co-run sets, the
    // table the interference-heavy worst case).
    ScheduleEvaluator eval(soc, result.interference, *model,
                           &result.contention);
    const double ambient = 5.0;
    const int bucket = result.contention.bucketOf(ambient);

    for (const auto& assign : std::vector<std::vector<int>>{
             {3, 3, 3}, {0, 0, 2}}) {
        const auto schedule = Schedule::fromAssignment(assign);
        const double predictedRatio
            = eval.predict(assign, bucket).latency
            / eval.predict(assign, 0).latency;

        SimExecConfig quiet;
        quiet.numTasks = 24;
        SimExecConfig loud = quiet;
        loud.ambientBandwidthGbps = ambient;
        const double quietInterval
            = SimExecutor(*model, quiet)
                  .execute(*app, schedule)
                  .taskIntervalSeconds;
        const double loudInterval
            = SimExecutor(*model, loud)
                  .execute(*app, schedule)
                  .taskIntervalSeconds;
        const double measuredRatio = loudInterval / quietInterval;

        EXPECT_GE(measuredRatio, 1.0);
        EXPECT_NEAR(measuredRatio, predictedRatio,
                    0.35 * predictedRatio)
            << schedule.compactString();
    }
}

// A host-executable memory-bound pipeline: real kernels over a real
// buffer, heavy enough that wall-clock stage times dwarf timer noise.

constexpr int kHostElems = 1 << 15;

Application
hostMemApp()
{
    Application app("HostMem", "buffer", "host memory-bound");
    platform::WorkProfile w;
    w.flops = 2e5;
    w.bytes = 6e5;
    w.parallelFraction = 1.0;
    w.pattern = platform::Pattern::Dense;
    const auto kernel = [](KernelCtx& ctx) {
        auto data = ctx.task.view<std::uint32_t>("data");
        for (int pass = 0; pass < 6; ++pass)
            for (auto& x : data)
                x = x * 2654435761u + 17u;
    };
    app.addStage(Stage("ka", w, kernel, nullptr));
    app.addStage(Stage("kb", w, kernel, nullptr));
    app.addStage(Stage("kc", w, kernel, nullptr));
    app.setTaskFactory([](std::int64_t task, std::uint64_t) {
        auto obj = std::make_unique<TaskObject>();
        obj->addBuffer("data", kHostElems * sizeof(std::uint32_t));
        auto data = obj->view<std::uint32_t>("data");
        for (int i = 0; i < kHostElems; ++i)
            data[static_cast<std::size_t>(i)]
                = static_cast<std::uint32_t>(task + i);
        return obj;
    });
    app.setTaskRefresher(
        [](TaskObject& obj, std::int64_t task, std::uint64_t) {
            obj.setTaskIndex(task);
            auto data = obj.view<std::uint32_t>("data");
            for (int i = 0; i < kHostElems; ++i)
                data[static_cast<std::size_t>(i)]
                    = static_cast<std::uint32_t>(task + i);
        });
    return app;
}

TEST(HostBackendContention, AmbientStretchTracksTheModel)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto app = hostMemApp();
    const auto schedule = Schedule::fromAssignment({0, 0, 0});

    const double ambient = 10.0;
    const auto& w = app.stage(0).work();
    const double expected
        = model.interferenceHeavyTime(w, 0, ambient)
        / model.interferenceHeavyTime(w, 0);
    ASSERT_GT(expected, 1.05); // the fixture must actually stretch

    runtime::RunConfig quiet;
    quiet.numTasks = 12;
    quiet.recordTrace = false;
    runtime::RunConfig loud = quiet;
    loud.ambientBandwidthGbps = ambient;

    // Wall-clock timing is noisy (ctest runs suites in parallel), so
    // take the best of three runs per configuration - load spikes only
    // ever inflate a run - and assert direction and rough magnitude of
    // the injected slowdown rather than a tight equality.
    const runtime::HostTimeBackend backend(soc);
    const auto bestOf = [&](const runtime::RunConfig& cfg) {
        double best = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 3; ++rep) {
            const auto run = backend.run(app, schedule, cfg);
            EXPECT_TRUE(run.validationErrors.empty());
            best = std::min(best, run.makespanSeconds);
        }
        return best;
    };
    const double ratio = bestOf(loud) / bestOf(quiet);
    EXPECT_GT(ratio, 1.0 + 0.3 * (expected - 1.0));
    EXPECT_LT(ratio, 1.0 + 4.0 * (expected - 1.0));
}

} // namespace
} // namespace bt::core
