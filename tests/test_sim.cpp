/**
 * @file
 * Unit tests for the discrete-event processor-sharing engine: exact
 * integration under constant and changing rates, timer ordering, and
 * dynamic task injection from callbacks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "sim/engine.hpp"

namespace bt::sim {
namespace {

/** Rate function giving every task the same constant rate. */
RateFn
constantRate(double r)
{
    return [r](std::span<const ActiveTask> active,
               std::span<double> rates) {
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = r;
    };
}

TEST(Engine, SingleTaskDuration)
{
    Engine e(constantRate(2.0)); // 2 work units per second
    double done_at = -1.0;
    e.onComplete([&](TaskId, std::uint64_t) { done_at = e.now(); });
    e.startTask(0, 3.0); // 3 units at rate 2 => 1.5 s
    e.run();
    EXPECT_NEAR(done_at, 1.5, 1e-12);
}

TEST(Engine, TwoIndependentTasksFinishInOrder)
{
    Engine e(constantRate(1.0));
    std::vector<std::uint64_t> order;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        order.push_back(tag);
    });
    e.startTask(1, 2.0);
    e.startTask(2, 1.0);
    e.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_NEAR(e.now(), 2.0, 1e-12);
}

TEST(Engine, ProcessorSharingSlowsTasks)
{
    // Rate = 1 / number of active tasks: two tasks of one unit each
    // should take 2 s total (1 s shared, then... both finish at 2 s).
    Engine e([](std::span<const ActiveTask> active,
                std::span<double> rates) {
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0 / static_cast<double>(active.size());
    });
    std::map<std::uint64_t, double> done;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        done[tag] = e.now();
    });
    e.startTask(1, 1.0);
    e.startTask(2, 1.0);
    e.run();
    EXPECT_NEAR(done[1], 2.0, 1e-12);
    EXPECT_NEAR(done[2], 2.0, 1e-12);
}

TEST(Engine, RateChangeIntegratesPiecewise)
{
    // Task A (1 unit) and task B started at t=0; when B finishes, A
    // speeds up. B: 0.5 units at rate 1 with sharing rate 0.5 each.
    Engine e([](std::span<const ActiveTask> active,
                std::span<double> rates) {
        const double r = active.size() == 2 ? 0.5 : 1.0;
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = r;
    });
    std::map<std::uint64_t, double> done;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        done[tag] = e.now();
    });
    e.startTask(1, 1.0);
    e.startTask(2, 0.5);
    e.run();
    // B finishes at t=1 (0.5 units at 0.5). A has 0.5 units left, now
    // at rate 1 => finishes at t=1.5.
    EXPECT_NEAR(done[2], 1.0, 1e-12);
    EXPECT_NEAR(done[1], 1.5, 1e-12);
}

TEST(Engine, TimersFireInOrderWithFifoTieBreak)
{
    Engine e(constantRate(1.0));
    std::vector<int> order;
    e.scheduleAt(2.0, [&] { order.push_back(2); });
    e.scheduleAt(1.0, [&] { order.push_back(1); });
    e.scheduleAt(2.0, [&] { order.push_back(3); }); // same time as #2
    e.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_NEAR(e.now(), 2.0, 1e-12);
}

TEST(Engine, TimerCanStartTask)
{
    Engine e(constantRate(1.0));
    double done_at = -1.0;
    e.onComplete([&](TaskId, std::uint64_t) { done_at = e.now(); });
    e.scheduleAt(1.0, [&] { e.startTask(7, 2.0); });
    e.run();
    EXPECT_NEAR(done_at, 3.0, 1e-12);
}

TEST(Engine, CompletionCallbackChainsTasks)
{
    Engine e(constantRate(1.0));
    int completions = 0;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        ++completions;
        if (tag < 4)
            e.startTask(tag + 1, 1.0);
    });
    e.startTask(0, 1.0);
    e.run();
    EXPECT_EQ(completions, 5);
    EXPECT_NEAR(e.now(), 5.0, 1e-12);
}

TEST(Engine, StartTimeTracked)
{
    Engine e(constantRate(1.0));
    e.scheduleAt(2.5, [&] {
        const TaskId id = e.startTask(1, 1.0);
        EXPECT_NEAR(e.startTime(id), 2.5, 1e-12);
    });
    e.run();
}

TEST(Engine, HorizonStopsEarly)
{
    Engine e(constantRate(1.0));
    e.startTask(0, 100.0);
    const double t = e.run(1.0);
    EXPECT_LE(t, 1.0 + 1e-9);
    EXPECT_EQ(e.activeCount(), 1u);
}

TEST(Engine, ManyTasksDeterministic)
{
    auto run_once = [] {
        Engine e([](std::span<const ActiveTask> active,
                    std::span<double> rates) {
            for (std::size_t i = 0; i < active.size(); ++i)
                rates[i] = 1.0
                    / (1.0 + 0.1 * static_cast<double>(active.size()));
        });
        std::vector<double> times;
        e.onComplete([&](TaskId, std::uint64_t) {
            times.push_back(e.now());
        });
        for (int i = 0; i < 50; ++i)
            e.startTask(static_cast<std::uint64_t>(i),
                        1.0 + 0.01 * i);
        e.run();
        return times;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, SimultaneousCompletionsAllFire)
{
    Engine e(constantRate(1.0));
    int completions = 0;
    e.onComplete([&](TaskId, std::uint64_t) { ++completions; });
    e.startTask(0, 1.0);
    e.startTask(1, 1.0);
    e.startTask(2, 1.0);
    e.run();
    EXPECT_EQ(completions, 3);
    EXPECT_NEAR(e.now(), 1.0, 1e-12);
}

} // namespace
} // namespace bt::sim
