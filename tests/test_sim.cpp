/**
 * @file
 * Unit tests for the discrete-event processor-sharing engine: exact
 * integration under constant and changing rates, timer ordering, and
 * dynamic task injection from callbacks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "sim/engine.hpp"

namespace bt::sim {
namespace {

/** Rate function giving every task the same constant rate. */
RateFn
constantRate(double r)
{
    return [r](std::span<const ActiveTask> active,
               std::span<double> rates) {
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = r;
    };
}

TEST(Engine, SingleTaskDuration)
{
    Engine e(constantRate(2.0)); // 2 work units per second
    double done_at = -1.0;
    e.onComplete([&](TaskId, std::uint64_t) { done_at = e.now(); });
    e.startTask(0, 3.0); // 3 units at rate 2 => 1.5 s
    e.run();
    EXPECT_NEAR(done_at, 1.5, 1e-12);
}

TEST(Engine, TwoIndependentTasksFinishInOrder)
{
    Engine e(constantRate(1.0));
    std::vector<std::uint64_t> order;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        order.push_back(tag);
    });
    e.startTask(1, 2.0);
    e.startTask(2, 1.0);
    e.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_NEAR(e.now(), 2.0, 1e-12);
}

TEST(Engine, ProcessorSharingSlowsTasks)
{
    // Rate = 1 / number of active tasks: two tasks of one unit each
    // should take 2 s total (1 s shared, then... both finish at 2 s).
    Engine e([](std::span<const ActiveTask> active,
                std::span<double> rates) {
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0 / static_cast<double>(active.size());
    });
    std::map<std::uint64_t, double> done;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        done[tag] = e.now();
    });
    e.startTask(1, 1.0);
    e.startTask(2, 1.0);
    e.run();
    EXPECT_NEAR(done[1], 2.0, 1e-12);
    EXPECT_NEAR(done[2], 2.0, 1e-12);
}

TEST(Engine, RateChangeIntegratesPiecewise)
{
    // Task A (1 unit) and task B started at t=0; when B finishes, A
    // speeds up. B: 0.5 units at rate 1 with sharing rate 0.5 each.
    Engine e([](std::span<const ActiveTask> active,
                std::span<double> rates) {
        const double r = active.size() == 2 ? 0.5 : 1.0;
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = r;
    });
    std::map<std::uint64_t, double> done;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        done[tag] = e.now();
    });
    e.startTask(1, 1.0);
    e.startTask(2, 0.5);
    e.run();
    // B finishes at t=1 (0.5 units at 0.5). A has 0.5 units left, now
    // at rate 1 => finishes at t=1.5.
    EXPECT_NEAR(done[2], 1.0, 1e-12);
    EXPECT_NEAR(done[1], 1.5, 1e-12);
}

TEST(Engine, TimersFireInOrderWithFifoTieBreak)
{
    Engine e(constantRate(1.0));
    std::vector<int> order;
    e.scheduleAt(2.0, [&] { order.push_back(2); });
    e.scheduleAt(1.0, [&] { order.push_back(1); });
    e.scheduleAt(2.0, [&] { order.push_back(3); }); // same time as #2
    e.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_NEAR(e.now(), 2.0, 1e-12);
}

TEST(Engine, TimerCanStartTask)
{
    Engine e(constantRate(1.0));
    double done_at = -1.0;
    e.onComplete([&](TaskId, std::uint64_t) { done_at = e.now(); });
    e.scheduleAt(1.0, [&] { e.startTask(7, 2.0); });
    e.run();
    EXPECT_NEAR(done_at, 3.0, 1e-12);
}

TEST(Engine, CompletionCallbackChainsTasks)
{
    Engine e(constantRate(1.0));
    int completions = 0;
    e.onComplete([&](TaskId, std::uint64_t tag) {
        ++completions;
        if (tag < 4)
            e.startTask(tag + 1, 1.0);
    });
    e.startTask(0, 1.0);
    e.run();
    EXPECT_EQ(completions, 5);
    EXPECT_NEAR(e.now(), 5.0, 1e-12);
}

TEST(Engine, StartTimeTracked)
{
    Engine e(constantRate(1.0));
    e.scheduleAt(2.5, [&] {
        const TaskId id = e.startTask(1, 1.0);
        EXPECT_NEAR(e.startTime(id), 2.5, 1e-12);
    });
    e.run();
}

TEST(Engine, HorizonStopsEarly)
{
    Engine e(constantRate(1.0));
    e.startTask(0, 100.0);
    const double t = e.run(1.0);
    EXPECT_LE(t, 1.0 + 1e-9);
    EXPECT_EQ(e.activeCount(), 1u);
}

TEST(Engine, ManyTasksDeterministic)
{
    auto run_once = [] {
        Engine e([](std::span<const ActiveTask> active,
                    std::span<double> rates) {
            for (std::size_t i = 0; i < active.size(); ++i)
                rates[i] = 1.0
                    / (1.0 + 0.1 * static_cast<double>(active.size()));
        });
        std::vector<double> times;
        e.onComplete([&](TaskId, std::uint64_t) {
            times.push_back(e.now());
        });
        for (int i = 0; i < 50; ++i)
            e.startTask(static_cast<std::uint64_t>(i),
                        1.0 + 0.01 * i);
        e.run();
        return times;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, SimultaneousCompletionsAllFire)
{
    Engine e(constantRate(1.0));
    int completions = 0;
    e.onComplete([&](TaskId, std::uint64_t) { ++completions; });
    e.startTask(0, 1.0);
    e.startTask(1, 1.0);
    e.startTask(2, 1.0);
    e.run();
    EXPECT_EQ(completions, 3);
    EXPECT_NEAR(e.now(), 1.0, 1e-12);
}

TEST(Engine, CancellationStressDrainsCleanly)
{
    // Many scheduleAt/cancelTask interleavings over a shared-rate
    // engine: timers cancel pseudo-randomly chosen live tasks while
    // completions and fresh starts churn the active set. Every started
    // task must end exactly once (completion or cancellation), no
    // cancelled task may complete, and the engine must drain.
    Engine e([](std::span<const ActiveTask> active,
                std::span<double> rates) {
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = 1.0
                / (1.0 + 0.25 * static_cast<double>(active.size()));
    });

    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next_rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    std::vector<TaskId> live;
    std::set<TaskId> cancelled;
    std::set<TaskId> completed;
    int started = 0;

    auto start_one = [&] {
        const double work
            = 0.5 + static_cast<double>(next_rand() % 100) / 50.0;
        live.push_back(
            e.startTask(static_cast<std::uint64_t>(started), work));
        ++started;
    };

    e.onComplete([&](TaskId id, std::uint64_t) {
        EXPECT_EQ(cancelled.count(id), 0u);
        EXPECT_TRUE(completed.insert(id).second);
        EXPECT_LE(e.startTime(id), e.now()); // valid during callback
        live.erase(std::remove(live.begin(), live.end(), id),
                   live.end());
    });

    std::function<void()> chaos = [&] {
        // Cancel one live task...
        for (int k = 0; k < 1 && !live.empty(); ++k) {
            const std::size_t pick
                = static_cast<std::size_t>(next_rand())
                % live.size();
            const TaskId victim = live[pick];
            EXPECT_TRUE(e.cancelTask(victim));
            EXPECT_FALSE(e.cancelTask(victim)); // gone already
            cancelled.insert(victim);
            live.erase(live.begin()
                       + static_cast<std::ptrdiff_t>(pick));
        }
        // ...start two replacements and keep the storm going a while.
        if (started < 300) {
            start_one();
            start_one();
            e.scheduleAt(e.now()
                             + 0.05
                                 * (1.0
                                    + static_cast<double>(
                                        next_rand() % 10)),
                         chaos);
        }
    };

    for (int i = 0; i < 8; ++i)
        start_one();
    e.scheduleAt(0.1, chaos);
    e.run();

    EXPECT_EQ(static_cast<int>(completed.size() + cancelled.size()),
              started);
    EXPECT_EQ(e.activeCount(), 0u);
    for (const TaskId id : cancelled)
        EXPECT_EQ(completed.count(id), 0u);
    EXPECT_GT(cancelled.size(), 10u);
    EXPECT_GT(completed.size(), 10u);
}

TEST(Engine, TimerSlotsRecycleWithFifoOrder)
{
    // Chained same-timestamp timers exercise slab-slot reuse; FIFO
    // (schedule order) must survive recycling.
    Engine e(constantRate(1.0));
    std::vector<int> order;
    for (int round = 0; round < 3; ++round) {
        const double at = 1.0 + round;
        for (int i = 0; i < 5; ++i)
            e.scheduleAt(at, [&order, round, i] {
                order.push_back(round * 5 + i);
            });
    }
    e.run();
    ASSERT_EQ(order.size(), 15u);
    for (int i = 0; i < 15; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, InvalidateRatesAppliesExternalSpeedChange)
{
    // A timer callback that alters external rate state (the thermal
    // slowdown pattern) must be able to force a rate re-read without
    // touching the active set.
    double scale = 1.0;
    Engine e([&scale](std::span<const ActiveTask> active,
                      std::span<double> rates) {
        for (std::size_t i = 0; i < active.size(); ++i)
            rates[i] = scale;
    });
    double done_at = -1.0;
    e.onComplete([&](TaskId, std::uint64_t) { done_at = e.now(); });
    e.startTask(0, 2.0); // 2 units at rate 1
    e.scheduleAt(1.0, [&] {
        scale = 0.5; // half speed for the remaining unit
        e.invalidateRates();
    });
    e.run();
    // 1 unit done by t=1, remaining 1 unit at rate 0.5 => t=3.
    EXPECT_NEAR(done_at, 3.0, 1e-12);
}

} // namespace
} // namespace bt::sim
