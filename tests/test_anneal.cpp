/**
 * @file
 * Tests for the annealed planning engine and the PlannerSpec API:
 * closed-form schedule-space sizing, annealed-vs-exact cross-validation
 * on every enumerable instance, seed determinism (including autotuner
 * thread-count invariance), fingerprint coverage of the annealing
 * knobs, the exact engines' large-instance refusal, and bt::Service's
 * annealed fallback for large tenants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "apps/alexnet.hpp"
#include "apps/octree_app.hpp"
#include "bench/common/bench_util.hpp"
#include "core/autotuner.hpp"
#include "core/optimizer.hpp"
#include "core/profiler.hpp"
#include "core/schedule.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"
#include "service/schedule_cache.hpp"
#include "service/service.hpp"

namespace bt::core {
namespace {

// ---------------------------------------------------------------------
// scheduleSpaceSize: the exact engines' refusal predicate.

TEST(ScheduleSpaceSize, MatchesEnumerationOnSmallSpaces)
{
    for (int n = 1; n <= 9; ++n)
        for (int m = 1; m <= 4; ++m)
            EXPECT_EQ(scheduleSpaceSize(n, m), countSchedules(n, m))
                << n << " stages, " << m << " PUs";
    EXPECT_EQ(scheduleSpaceSize(5, 5), countSchedules(5, 5));
    EXPECT_EQ(scheduleSpaceSize(6, 6), countSchedules(6, 6));
}

TEST(ScheduleSpaceSize, KnownValues)
{
    EXPECT_EQ(scheduleSpaceSize(9, 4), 2116u);
    // The large-instance tier: 14 stages on 8 PU classes.
    EXPECT_EQ(scheduleSpaceSize(14, 8), 169636384u);
}

TEST(ScheduleSpaceSize, SaturatesInsteadOfOverflowing)
{
    const auto sat = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(scheduleSpaceSize(64, 16), sat);
    EXPECT_EQ(scheduleSpaceSize(200, 16), sat);
}

TEST(PlannerEngineNames, RoundTrip)
{
    EXPECT_STREQ(plannerEngineName(PlannerEngine::Solver), "solver");
    EXPECT_STREQ(plannerEngineName(PlannerEngine::Exhaustive),
                 "exhaustive");
    EXPECT_STREQ(plannerEngineName(PlannerEngine::Annealed),
                 "annealed");
    EXPECT_EQ(plannerEngineFromName("solver"), PlannerEngine::Solver);
    EXPECT_EQ(plannerEngineFromName("exhaustive"),
              PlannerEngine::Exhaustive);
    EXPECT_EQ(plannerEngineFromName("annealed"),
              PlannerEngine::Annealed);
    // The deprecated spelling still parses.
    EXPECT_EQ(plannerEngineFromName("constraint_solver"),
              PlannerEngine::Solver);
}

// ---------------------------------------------------------------------
// Cross-validation: annealed vs exact on enumerable instances.

/** Front-candidate cost under the configured ranking objective. */
double
frontCost(const Candidate& c, const PlannerSpec& spec)
{
    switch (spec.objective) {
      case PlannerSpec::Objective::Latency:
        return c.predictedLatency;
      case PlannerSpec::Objective::EnergyDelay:
        return c.predictedEdp();
      case PlannerSpec::Objective::EnergyKDelay:
        return std::pow(c.predictedEnergyJ, spec.energyExponent)
            * c.predictedLatency;
    }
    return c.predictedLatency;
}

/**
 * The acceptance check: on an instance the exact engines can
 * enumerate, the annealed engine's front candidate must be cost-equal
 * to the exact optimum (identical evaluator arithmetic on both sides,
 * so the comparison is bit-exact, not approximate), and the level-1
 * feasibility class must agree.
 */
void
expectAnnealedMatchesExact(
    const platform::SocDescription& soc, const ProfilingTable& table,
    PlannerSpec spec,
    const platform::ContentionProfile* contention = nullptr)
{
    spec.contentionProfile = contention;
    PlannerSpec exact_spec = spec;
    exact_spec.engine = PlannerEngine::Solver;
    PlannerSpec annealed_spec = spec;
    annealed_spec.engine = PlannerEngine::Annealed;

    Optimizer exact_opt(soc, table, exact_spec);
    const auto exact_cands = exact_opt.optimize();
    Optimizer annealed_opt(soc, table, annealed_spec);
    const auto annealed_cands = annealed_opt.optimize();

    ASSERT_FALSE(exact_cands.empty());
    ASSERT_FALSE(annealed_cands.empty());
    EXPECT_EQ(annealed_opt.stats().engine, PlannerEngine::Annealed);
    EXPECT_EQ(annealed_opt.stats().spaceSize,
              exact_opt.stats().spaceSize);
    EXPECT_GT(annealed_opt.stats().annealDistinct, 0);

    // Level-1 agreement: the walk found the same unrestricted optimum
    // and the same utilization class as the exact levels.
    EXPECT_DOUBLE_EQ(annealed_opt.stats().unrestrictedLatency,
                     exact_opt.stats().unrestrictedLatency);
    EXPECT_EQ(annealed_opt.stats().requiredPus,
              exact_opt.stats().requiredPus);

    EXPECT_DOUBLE_EQ(frontCost(annealed_cands.front(), spec),
                     frontCost(exact_cands.front(), spec))
        << "annealed " << annealed_cands.front().schedule.compactString()
        << " vs exact " << exact_cands.front().schedule.compactString();
}

TEST(AnnealedCrossValidation, PixelAlexNetSparse)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);
    expectAnnealedMatchesExact(soc, profile.interference, {});
}

TEST(AnnealedCrossValidation, PixelAlexNetSparseNoFilter)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);
    PlannerSpec spec;
    spec.utilizationFilter = false;
    expectAnnealedMatchesExact(soc, profile.interference, spec);
}

TEST(AnnealedCrossValidation, PixelAlexNetSparseEnergyObjectives)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);
    PlannerSpec edp;
    edp.objective = PlannerSpec::Objective::EnergyDelay;
    expectAnnealedMatchesExact(soc, profile.interference, edp);

    PlannerSpec ekd;
    ekd.objective = PlannerSpec::Objective::EnergyKDelay;
    ekd.energyExponent = 2.0;
    expectAnnealedMatchesExact(soc, profile.interference, ekd);
}

TEST(AnnealedCrossValidation, PixelOctree)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const auto profile = Profiler(model).profile(app);
    expectAnnealedMatchesExact(soc, profile.interference, {});
}

TEST(AnnealedCrossValidation, JetsonAlexNetSparse)
{
    const auto soc = platform::jetsonOrinNano();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);
    expectAnnealedMatchesExact(soc, profile.interference, {});
}

TEST(AnnealedCrossValidation, ContentionRigWithC6Budget)
{
    const auto soc = platform::contentionRig();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);

    PlannerSpec spec;
    spec.contention.budgetGbps = 5.0;
    expectAnnealedMatchesExact(soc, profile.interference, spec,
                               &profile.contention);

    // And the annealed candidates all honor the budget.
    spec.engine = PlannerEngine::Annealed;
    spec.contentionProfile = &profile.contention;
    Optimizer opt(soc, profile.interference, spec);
    for (const auto& c : opt.optimize())
        EXPECT_LE(c.predictedDemandGbps, 5.0 + 1e-9)
            << c.schedule.compactString();
    EXPECT_FALSE(opt.stats().c6Relaxed);
    EXPECT_GT(opt.stats().annealFiltered, 0);
}

TEST(AnnealedCrossValidation, RestrictedPuSet)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);

    PlannerSpec spec;
    spec.allowedPus = {0, 1, 2};
    expectAnnealedMatchesExact(soc, profile.interference, spec);

    spec.engine = PlannerEngine::Annealed;
    Optimizer opt(soc, profile.interference, spec);
    for (const auto& c : opt.optimize())
        for (const auto& chunk : c.schedule.chunks())
            EXPECT_LE(chunk.pu, 2);
}

// ---------------------------------------------------------------------
// Determinism.

TEST(AnnealedDeterminism, SameSeedSameSchedulesByteForByte)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);

    PlannerSpec spec;
    spec.engine = PlannerEngine::Annealed;

    Optimizer first(soc, profile.interference, spec);
    const auto a = first.optimize();
    Optimizer second(soc, profile.interference, spec);
    const auto b = second.optimize();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].schedule.toAssignment(),
                  b[i].schedule.toAssignment())
            << "rank " << i;
        EXPECT_EQ(a[i].predictedLatency, b[i].predictedLatency);
        EXPECT_EQ(a[i].predictedGapness, b[i].predictedGapness);
        EXPECT_EQ(a[i].predictedEnergyJ, b[i].predictedEnergyJ);
    }
    EXPECT_EQ(first.stats().annealProposed,
              second.stats().annealProposed);
    EXPECT_EQ(first.stats().annealAccepted,
              second.stats().annealAccepted);
    EXPECT_EQ(first.stats().annealDistinct,
              second.stats().annealDistinct);
}

TEST(AnnealedDeterminism, AutotunerReportInvariantAcrossThreadCounts)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);
    const SimExecutor executor(model);

    PlannerSpec spec;
    AnnealCampaign campaign; // default: 4 seeds, 1 temperature

    std::vector<TuningReport> reports;
    for (const int threads : {1, 2, 8}) {
        const AutoTuner tuner(executor, 10.0, threads);
        reports.push_back(tuner.tuneAnnealed(
            app, soc, profile.interference, spec, campaign));
    }
    const TuningReport& serial = reports.front();
    ASSERT_FALSE(serial.all.empty());
    for (const TuningReport& r : reports) {
        ASSERT_EQ(r.all.size(), serial.all.size());
        for (std::size_t i = 0; i < r.all.size(); ++i) {
            // Byte-identical: same schedule, same bits of every
            // measured number, same predicted rank.
            EXPECT_EQ(r.all[i].candidate.schedule.toAssignment(),
                      serial.all[i].candidate.schedule.toAssignment());
            EXPECT_EQ(r.all[i].measuredLatency,
                      serial.all[i].measuredLatency);
            EXPECT_EQ(r.all[i].rankPredicted,
                      serial.all[i].rankPredicted);
        }
        EXPECT_EQ(r.bestIndex, serial.bestIndex);
        EXPECT_EQ(r.campaignCostSeconds, serial.campaignCostSeconds);
        EXPECT_NO_THROW((void)r.autotuningGain());
    }
}

// ---------------------------------------------------------------------
// Fingerprint coverage.

TEST(PlannerFingerprint, ExactEnginesAndMemoizationFoldTogether)
{
    PlannerSpec solver;
    PlannerSpec exhaustive = solver;
    exhaustive.engine = PlannerEngine::Exhaustive;
    PlannerSpec unmemoized = solver;
    unmemoized.memoize = false;

    // Exact engines are bit-identical by contract, so flipping between
    // them (or toggling memoization) must keep the same cache entries.
    EXPECT_EQ(solver.fingerprint(), exhaustive.fingerprint());
    EXPECT_EQ(solver.fingerprint(), unmemoized.fingerprint());
}

TEST(PlannerFingerprint, AnnealedEngineAndKnobsAreCovered)
{
    PlannerSpec exact;
    PlannerSpec annealed = exact;
    annealed.engine = PlannerEngine::Annealed;
    EXPECT_NE(exact.fingerprint(), annealed.fingerprint());

    // Every annealing knob matters once the engine is Annealed...
    PlannerSpec seed = annealed;
    seed.anneal.seed ^= 1;
    EXPECT_NE(annealed.fingerprint(), seed.fingerprint());
    PlannerSpec budget = annealed;
    budget.anneal.moveBudget += 1;
    EXPECT_NE(annealed.fingerprint(), budget.fingerprint());
    PlannerSpec restarts = annealed;
    restarts.anneal.restarts += 1;
    EXPECT_NE(annealed.fingerprint(), restarts.fingerprint());
    PlannerSpec temp = annealed;
    temp.anneal.initialTemperature = 0.5;
    EXPECT_NE(annealed.fingerprint(), temp.fingerprint());

    // ...and none of them matter under an exactness-preserving engine.
    PlannerSpec exact_seed = exact;
    exact_seed.anneal.seed ^= 1;
    EXPECT_EQ(exact.fingerprint(), exact_seed.fingerprint());
}

TEST(PlannerFingerprint, SharedPointersAreExcluded)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::alexnetSparse();
    const auto profile = Profiler(model).profile(app);
    ScheduleEvaluator eval(soc, profile.interference, model);

    PlannerSpec base;
    PlannerSpec shared = base;
    shared.sharedEvaluator = &eval;
    shared.contentionProfile = &profile.contention;
    // Sharing never changes results, only cache temperature.
    EXPECT_EQ(base.fingerprint(), shared.fingerprint());
}

TEST(PlannerFingerprint, CacheKeysAnnealedAndExactPlansApart)
{
    // The schedule-cache contract: a key minted for an exact plan can
    // never serve an annealed one, because the fingerprint differs.
    PlannerSpec exact;
    PlannerSpec annealed = exact;
    annealed.engine = PlannerEngine::Annealed;

    service::ScheduleKey exact_key;
    exact_key.app = "tenant";
    exact_key.platform = "rig";
    exact_key.plannerFingerprint = exact.fingerprint();
    service::ScheduleKey annealed_key = exact_key;
    annealed_key.plannerFingerprint = annealed.fingerprint();
    EXPECT_FALSE(exact_key == annealed_key);

    service::ScheduleCache cache(service::ScheduleCacheConfig{});
    service::CachedPlan plan;
    plan.schedule = Schedule::fromAssignment({0, 0, 0});
    cache.insert(exact_key, plan);
    EXPECT_TRUE(cache.lookup(exact_key).has_value());
    EXPECT_FALSE(cache.lookup(annealed_key).has_value());

    // Same seed, same knobs: the annealed key is stable...
    PlannerSpec again = annealed;
    EXPECT_EQ(annealed_key.plannerFingerprint, again.fingerprint());
    // ...and a different seed is a different plan, hence a miss.
    again.anneal.seed ^= 1;
    service::ScheduleKey reseeded = annealed_key;
    reseeded.plannerFingerprint = again.fingerprint();
    cache.insert(annealed_key, plan);
    EXPECT_FALSE(cache.lookup(reseeded).has_value());
}

// ---------------------------------------------------------------------
// Large instances: exact refusal, annealed feasibility.

class LargeInstance : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        soc = platform::manycoreRig();
        table = bench::deepPipelineTable(soc);
        contention = bench::deepPipelineContention(soc, *table);
    }

    platform::SocDescription soc;
    std::optional<ProfilingTable> table;
    platform::ContentionProfile contention;
};

TEST_F(LargeInstance, ExactEnginesRefuse)
{
    EXPECT_GT(scheduleSpaceSize(table->numStages(), soc.numPus()),
              PlannerSpec{}.exactSpaceLimit);
    for (const auto engine :
         {PlannerEngine::Solver, PlannerEngine::Exhaustive}) {
        PlannerSpec spec;
        spec.engine = engine;
        Optimizer opt(soc, *table, spec);
        EXPECT_DEATH_IF_SUPPORTED((void)opt.optimize(),
                                  "exceeds exactSpaceLimit");
    }
}

TEST_F(LargeInstance, AnnealedPlansFeasiblyUnderC6)
{
    PlannerSpec spec;
    spec.engine = PlannerEngine::Annealed;
    spec.contention.budgetGbps = soc.mem.dramBwGbps;
    spec.contentionProfile = &contention;

    Optimizer opt(soc, *table, spec);
    const auto cands = opt.optimize();
    ASSERT_FALSE(cands.empty());
    EXPECT_FALSE(opt.stats().c6Relaxed);
    // The walk stayed inside its move budget and the space is recorded.
    EXPECT_GT(opt.stats().annealProposed, 0);
    EXPECT_LE(opt.stats().annealProposed, spec.anneal.moveBudget);
    EXPECT_EQ(opt.stats().spaceSize, 169636384u);
    for (const auto& c : cands) {
        EXPECT_TRUE(c.schedule.valid(table->numStages(), soc.numPus()));
        EXPECT_LE(c.predictedDemandGbps,
                  spec.contention.budgetGbps + 1e-9)
            << c.schedule.compactString();
    }

    // Determinism holds at this scale too.
    Optimizer again(soc, *table, spec);
    const auto b = again.optimize();
    ASSERT_EQ(cands.size(), b.size());
    for (std::size_t i = 0; i < cands.size(); ++i)
        EXPECT_EQ(cands[i].schedule.toAssignment(),
                  b[i].schedule.toAssignment());
}

// ---------------------------------------------------------------------
// bt::Service: large tenants fall back to the annealed engine.

TEST(ServiceAnnealedFallback, LargeTenantAnnealsInsteadOfFailing)
{
    // AlexNet-sparse (9 stages) on the 8-class rig is ~3.16M schedules
    // - beyond the exact limit, so the service must flip the plan to
    // the annealed engine rather than panic or relax C6.
    const auto soc = platform::manycoreRig();
    service::ServiceConfig cfg;
    cfg.workers = 1;
    service::Service service(soc, cfg);
    service.registerApp(apps::alexnetSparse());

    const auto key = service.keyFor("AlexNet-Sparse", 0, 0, 1);
    EXPECT_NE(key.plannerFingerprint, cfg.optimizer.fingerprint());

    const auto plan = service.freshPlan("AlexNet-Sparse", 0, 0, 1);
    EXPECT_TRUE(plan.schedule.valid(9, soc.numPus()));
    const auto report = service.report();
    EXPECT_EQ(report.plannerEngine, "solver"); // the configured engine
    EXPECT_GE(report.annealedFallbacks, 1);

    // Disabling the refusal threshold keeps the exact engine, so the
    // two configurations mint different cache keys: an annealed plan
    // can never be served where an exact one was requested.
    service::ServiceConfig unlimited = cfg;
    unlimited.optimizer.exactSpaceLimit = 0;
    service::Service exact_service(soc, unlimited);
    exact_service.registerApp(apps::alexnetSparse());
    const auto exact_key = exact_service.keyFor("AlexNet-Sparse", 0, 0, 1);
    EXPECT_NE(exact_key.plannerFingerprint, key.plannerFingerprint);
}

TEST(ServiceAnnealedFallback, SmallTenantKeepsTheExactEngine)
{
    const auto soc = platform::pixel7a();
    service::ServiceConfig cfg;
    cfg.workers = 1;
    service::Service service(soc, cfg);
    service.registerApp(apps::alexnetSparse());

    const auto plan = service.freshPlan("AlexNet-Sparse", 0, 0, 1);
    EXPECT_TRUE(plan.schedule.valid(9, soc.numPus()));
    const auto report = service.report();
    EXPECT_EQ(report.plannerEngine, "solver");
    EXPECT_EQ(report.annealedFallbacks, 0);
}

} // namespace
} // namespace bt::core
