/**
 * @file
 * Tests for the image kernels behind the feature-extraction case
 * study: blur separability and normalization, Sobel gradients, Harris
 * response properties, NMS semantics, BRIEF determinism - references
 * vs both backends, plus end-to-end pipeline validation through the
 * executors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "apps/features.hpp"
#include "common/rng.hpp"
#include "core/native_executor.hpp"
#include "core/sim_executor.hpp"
#include "kernels/image.hpp"
#include "platform/devices.hpp"
#include "sched/thread_pool.hpp"

namespace bt::kernels {
namespace {

std::vector<float>
randomImage(const ImageShape& s, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> img(static_cast<std::size_t>(s.pixels()));
    for (auto& p : img)
        p = static_cast<float>(rng.nextDouble());
    return img;
}

void
expectNear(std::span<const float> a, std::span<const float> b,
           float tol = 1e-5f)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], tol) << "at " << i;
}

TEST(Blur, PreservesConstantImages)
{
    const ImageShape s{16, 12};
    std::vector<float> in(static_cast<std::size_t>(s.pixels()), 0.5f);
    std::vector<float> out(in.size());
    blurHReference(s, in, out);
    for (float v : out)
        EXPECT_NEAR(v, 0.5f, 1e-6f);
    blurVReference(s, in, out);
    for (float v : out)
        EXPECT_NEAR(v, 0.5f, 1e-6f);
}

TEST(Blur, BackendsMatchReference)
{
    const ImageShape s{33, 21};
    const auto in = randomImage(s, 1);
    std::vector<float> want(in.size()), cpu(in.size()), gpu(in.size());
    sched::ThreadPool pool(3);
    blurHReference(s, in, want);
    blurHCpu(CpuExec{&pool}, s, in, cpu);
    blurHGpu(GpuExec{}, s, in, gpu);
    expectNear(cpu, want, 0.0f);
    expectNear(gpu, want, 0.0f);

    blurVReference(s, in, want);
    blurVCpu(CpuExec{&pool}, s, in, cpu);
    blurVGpu(GpuExec{}, s, in, gpu);
    expectNear(cpu, want, 0.0f);
    expectNear(gpu, want, 0.0f);
}

TEST(Blur, SmoothsHighFrequency)
{
    // A checkerboard's variance must shrink under the binomial blur.
    const ImageShape s{32, 32};
    std::vector<float> in(static_cast<std::size_t>(s.pixels()));
    for (int y = 0; y < s.h; ++y)
        for (int x = 0; x < s.w; ++x)
            in[static_cast<std::size_t>(y * s.w + x)]
                = static_cast<float>((x + y) % 2);
    std::vector<float> tmp(in.size()), out(in.size());
    blurHReference(s, in, tmp);
    blurVReference(s, tmp, out);

    auto variance = [](std::span<const float> v) {
        double m = 0.0;
        for (float x : v)
            m += x;
        m /= static_cast<double>(v.size());
        double acc = 0.0;
        for (float x : v)
            acc += (x - m) * (x - m);
        return acc / static_cast<double>(v.size());
    };
    EXPECT_LT(variance(out), variance(in) * 0.25);
}

TEST(Sobel, FlatImageHasZeroGradient)
{
    const ImageShape s{8, 8};
    std::vector<float> in(64, 0.3f), gx(64), gy(64);
    sobelReference(s, in, gx, gy);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_FLOAT_EQ(gx[i], 0.0f);
        EXPECT_FLOAT_EQ(gy[i], 0.0f);
    }
}

TEST(Sobel, HorizontalRampHasPureGx)
{
    const ImageShape s{8, 8};
    std::vector<float> in(64), gx(64), gy(64);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            in[static_cast<std::size_t>(y * 8 + x)]
                = static_cast<float>(x);
    sobelReference(s, in, gx, gy);
    // Interior: gx = 8 (Sobel weight sum), gy = 0.
    EXPECT_FLOAT_EQ(gx[3 * 8 + 3], 8.0f);
    EXPECT_FLOAT_EQ(gy[3 * 8 + 3], 0.0f);
}

TEST(Sobel, BackendsMatchReference)
{
    const ImageShape s{25, 17};
    const auto in = randomImage(s, 2);
    std::vector<float> wx(in.size()), wy(in.size());
    std::vector<float> cx(in.size()), cy(in.size());
    std::vector<float> gxv(in.size()), gyv(in.size());
    sobelReference(s, in, wx, wy);
    sched::ThreadPool pool(2);
    sobelCpu(CpuExec{&pool}, s, in, cx, cy);
    sobelGpu(GpuExec{}, s, in, gxv, gyv);
    expectNear(cx, wx, 0.0f);
    expectNear(cy, wy, 0.0f);
    expectNear(gxv, wx, 0.0f);
    expectNear(gyv, wy, 0.0f);
}

TEST(Harris, CornerScoresHigherThanEdge)
{
    // A bright quadrant produces a corner at its inner vertex; compare
    // the response there against a point on one of its straight edges.
    const ImageShape s{32, 32};
    std::vector<float> in(static_cast<std::size_t>(s.pixels()), 0.0f);
    for (int y = 16; y < 32; ++y)
        for (int x = 16; x < 32; ++x)
            in[static_cast<std::size_t>(y * s.w + x)] = 1.0f;
    std::vector<float> gx(in.size()), gy(in.size()),
        resp(in.size());
    sobelReference(s, in, gx, gy);
    harrisReference(s, gx, gy, resp);
    const float corner = resp[static_cast<std::size_t>(16 * 32 + 16)];
    const float edge = resp[static_cast<std::size_t>(16 * 32 + 26)];
    EXPECT_GT(corner, edge);
    EXPECT_GT(corner, 0.0f);
}

TEST(Harris, BackendsMatchReference)
{
    const ImageShape s{19, 23};
    const auto in = randomImage(s, 3);
    std::vector<float> gx(in.size()), gy(in.size());
    sobelReference(s, in, gx, gy);
    std::vector<float> want(in.size()), cpu(in.size()),
        gpu(in.size());
    harrisReference(s, gx, gy, want);
    sched::ThreadPool pool(2);
    harrisCpu(CpuExec{&pool}, s, gx, gy, cpu);
    harrisGpu(GpuExec{}, s, gx, gy, gpu);
    expectNear(cpu, want, 0.0f);
    expectNear(gpu, want, 0.0f);
}

TEST(Nms, SingleGlobalMaximumSurvives)
{
    const ImageShape s{9, 9};
    std::vector<float> resp(81, 0.0f);
    resp[4 * 9 + 4] = 1.0f;
    std::vector<std::uint32_t> flags(81);
    nmsReference(s, resp, 0.1f, flags);
    EXPECT_EQ(std::accumulate(flags.begin(), flags.end(), 0u), 1u);
    EXPECT_EQ(flags[4 * 9 + 4], 1u);
}

TEST(Nms, BorderNeverQualifies)
{
    const ImageShape s{5, 5};
    std::vector<float> resp(25, 0.0f);
    resp[0] = 10.0f; // corner pixel of the image
    std::vector<std::uint32_t> flags(25);
    nmsReference(s, resp, 0.1f, flags);
    EXPECT_EQ(std::accumulate(flags.begin(), flags.end(), 0u), 0u);
}

TEST(Nms, ThresholdFilters)
{
    const ImageShape s{9, 9};
    std::vector<float> resp(81, 0.0f);
    resp[4 * 9 + 4] = 0.05f;
    std::vector<std::uint32_t> flags(81);
    nmsReference(s, resp, 0.1f, flags);
    EXPECT_EQ(std::accumulate(flags.begin(), flags.end(), 0u), 0u);
}

TEST(Nms, BackendsMatchReference)
{
    const ImageShape s{40, 30};
    const auto in = randomImage(s, 4);
    std::vector<std::uint32_t> want(in.size()), cpu(in.size()),
        gpu(in.size());
    nmsReference(s, in, 0.5f, want);
    sched::ThreadPool pool(3);
    nmsCpu(CpuExec{&pool}, s, in, 0.5f, cpu);
    nmsGpu(GpuExec{}, s, in, 0.5f, gpu);
    EXPECT_EQ(cpu, want);
    EXPECT_EQ(gpu, want);
}

TEST(Brief, DeterministicAndBackendsAgree)
{
    const ImageShape s{64, 64};
    const auto img = randomImage(s, 5);
    std::vector<std::uint32_t> corners{64 * 10 + 12, 64 * 30 + 40,
                                       64 * 50 + 5};
    std::vector<std::uint32_t> a(corners.size() * kDescriptorWords);
    std::vector<std::uint32_t> b(a.size());
    sched::ThreadPool pool(2);
    briefCpu(CpuExec{&pool}, s, img, corners,
             static_cast<std::int64_t>(corners.size()), a);
    briefGpu(GpuExec{}, s, img, corners,
             static_cast<std::int64_t>(corners.size()), b);
    EXPECT_EQ(a, b);

    // Distinct corners on a random image should produce distinct
    // descriptors.
    EXPECT_NE(std::vector<std::uint32_t>(a.begin(),
                                         a.begin() + kDescriptorWords),
              std::vector<std::uint32_t>(
                  a.begin() + kDescriptorWords,
                  a.begin() + 2 * kDescriptorWords));
}

TEST(FeaturesApp, SevenStagesWithExpectedNames)
{
    const auto app = apps::featuresApp();
    ASSERT_EQ(app.numStages(), 7);
    const std::vector<std::string> expect{"blur_h", "blur_v", "sobel",
                                          "harris", "nms", "compact",
                                          "brief"};
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(app.stage(i).name(),
                  expect[static_cast<std::size_t>(i)]);
}

class FeaturesSchedules : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FeaturesSchedules, PipelineValidatesUnderAnyChunking)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    auto app = apps::featuresApp(apps::FeaturesConfig{
        .width = 96, .height = 64, .withValidator = true});

    std::vector<int> assign;
    for (const char* c = GetParam(); *c; ++c)
        assign.push_back(*c - '0');
    ASSERT_EQ(assign.size(), 7u);

    core::SimExecConfig cfg;
    cfg.numTasks = 3;
    cfg.runKernels = true;
    const core::SimExecutor exec(model, cfg);
    const auto result
        = exec.execute(app, core::Schedule::fromAssignment(assign));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

INSTANTIATE_TEST_SUITE_P(Chunkings, FeaturesSchedules,
                         ::testing::Values("0000000", "3333333",
                                           "0001233", "3332211"));

TEST(FeaturesApp, NativePipelineRuns)
{
    const auto soc = platform::nativeHost();
    auto app = apps::featuresApp(apps::FeaturesConfig{
        .width = 96, .height = 64, .withValidator = true});
    core::NativeExecConfig cfg;
    cfg.numTasks = 3;
    const core::NativeExecutor exec(soc, cfg);
    const auto result = exec.execute(
        app, core::Schedule::fromAssignment({0, 0, 0, 0, 1, 1, 1}));
    EXPECT_TRUE(result.valid())
        << (result.validationErrors.empty()
                ? ""
                : result.validationErrors.front());
}

} // namespace
} // namespace bt::kernels
