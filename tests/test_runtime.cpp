/**
 * @file
 * Tests for the unified pipeline runtime: the shared buffer-resolution
 * rule, the structured TraceTimeline (derived statistics and the Chrome
 * trace-event JSON export, round-tripped through a real JSON parser),
 * cross-backend output equivalence (virtual DES vs host threads) over
 * every enumerable schedule of a small application, deterministic noise
 * plumbing, and the trace carried by the end-to-end flow report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>

#include "apps/features.hpp"
#include "apps/octree_app.hpp"
#include "core/dynamic_executor.hpp"
#include "core/native_executor.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"
#include "runtime/run_types.hpp"
#include "runtime/trace.hpp"

namespace bt::core {
namespace {

// ---------------------------------------------------------------------
// S1: the "0 = one per chunk plus one" multi-buffering default.

TEST(RunConfig, ResolveBuffersDefaultsToSlotsPlusOne)
{
    EXPECT_EQ(runtime::RunConfig::resolveBuffers(0, 1), 2);
    EXPECT_EQ(runtime::RunConfig::resolveBuffers(0, 4), 5);
    EXPECT_EQ(runtime::RunConfig::resolveBuffers(-3, 2), 3);
    EXPECT_EQ(runtime::RunConfig::resolveBuffers(7, 4), 7);

    runtime::RunConfig cfg;
    EXPECT_EQ(cfg.resolveBuffers(3), 4);
    cfg.numBuffers = 2;
    EXPECT_EQ(cfg.resolveBuffers(3), 2);
}

TEST(RunTypes, LegacyResultTypesAreTheUnifiedResult)
{
    // The deprecated ExecutionResult/NativeResult aliases are gone;
    // the config aliases remain the unified RunConfig.
    static_assert(std::is_same_v<SimExecConfig, runtime::RunConfig>);
    static_assert(std::is_same_v<NativeExecConfig, runtime::RunConfig>);
    static_assert(
        std::is_base_of_v<runtime::RunConfig, DynamicExecConfig>);
    SUCCEED();
}

// ---------------------------------------------------------------------
// TraceTimeline statistics on a hand-built timeline.

TEST(TraceTimeline, StatsOnHandBuiltTimeline)
{
    runtime::TraceTimeline tl("test", 2, {"cpu", "gpu"}, {"a", "b"});
    // PU0 busy [0,1) and [2,3); PU1 busy [0.5,2.5).
    using runtime::TraceEventKind;
    tl.record({0, 0, 0, 0, 0.0, 0.0, 1.0, {}, TraceEventKind::Stage, {}});
    tl.record({0, 1, 1, 1, 0.1, 0.5, 2.5, {0}, TraceEventKind::Stage, {}});
    tl.record({1, 0, 0, 0, 0.3, 2.0, 3.0, {1}, TraceEventKind::Stage, {}});
    tl.sortByStart();

    const auto st = tl.stats();
    EXPECT_EQ(st.events, 3);
    EXPECT_DOUBLE_EQ(st.makespanSeconds, 3.0);
    EXPECT_DOUBLE_EQ(st.busySeconds, 4.0);
    EXPECT_DOUBLE_EQ(st.perPu[0].busySeconds, 2.0);
    EXPECT_DOUBLE_EQ(st.perPu[1].busySeconds, 2.0);
    EXPECT_DOUBLE_EQ(st.perPu[0].occupancy, 2.0 / 3.0);
    // Bubble: each used PU idles 1s of the 3s makespan.
    EXPECT_DOUBLE_EQ(st.bubbleSeconds, 2.0);
    EXPECT_DOUBLE_EQ(st.bubbleFraction, 2.0 / 6.0);
    // 3s of the 4s busy time started with a co-runner.
    EXPECT_DOUBLE_EQ(st.interferedFraction, 3.0 / 4.0);
    EXPECT_NEAR(st.meanQueueWaitSeconds, 0.4 / 3.0, 1e-12);
    // Overlap windows: [0.5,1) and [2,2.5) -> 1s of co-residency.
    EXPECT_DOUBLE_EQ(st.coResidency(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(st.coResidency(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(st.coResidency(0, 0), 2.0);
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser: just enough to genuinely parse
// the Chrome trace export (objects, arrays, strings, numbers, bools).

class MiniJson
{
  public:
    explicit MiniJson(const std::string& text) : s_(text) {}

    /** Parse one full JSON value; false on any syntax error. */
    bool
    parse()
    {
        pos_ = 0;
        if (!value())
            return false;
        ws();
        return pos_ == s_.size();
    }

    int objects() const { return objects_; }
    int arrays() const { return arrays_; }

    /** Occurrences of string @p key used as an object key. */
    int
    keyCount(const std::string& key) const
    {
        const auto it = keys_.find(key);
        return it == keys_.end() ? 0 : it->second;
    }

  private:
    void
    ws()
    {
        while (pos_ < s_.size()
               && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    lit(const char* word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string(std::string* out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        std::string val;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            val += s_[pos_++];
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        if (out)
            *out = val;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E' || s_[pos_] == '-'
                   || s_[pos_] == '+')) {
            if (std::isdigit(static_cast<unsigned char>(s_[pos_])))
                digits = true;
            ++pos_;
        }
        return digits && pos_ > start;
    }

    bool
    value()
    {
        ws();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return lit("true");
        if (c == 'f')
            return lit("false");
        if (c == 'n')
            return lit("null");
        return number();
    }

    bool
    object()
    {
        ++pos_; // '{'
        ++objects_;
        ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            std::string key;
            if (!string(&key))
                return false;
            ++keys_[key];
            ws();
            if (pos_ >= s_.size() || s_[pos_++] != ':')
                return false;
            if (!value())
                return false;
            ws();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        ++arrays_;
        ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    std::string s_; ///< by value: callers may pass a temporary
    std::size_t pos_ = 0;
    int objects_ = 0;
    int arrays_ = 0;
    std::map<std::string, int> keys_;
};

TEST(TraceTimeline, ChromeJsonRoundTripsThroughParser)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();

    SimExecConfig cfg;
    cfg.numTasks = 6;
    const SimExecutor exec(model, cfg);
    const auto run = exec.execute(
        app, Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2}));

    ASSERT_FALSE(run.trace.empty());
    const std::string json = run.trace.chromeJson();
    MiniJson parsed(json);
    ASSERT_TRUE(parsed.parse()) << json.substr(0, 200);

    // One metadata object per PU, one "X" object per stage execution,
    // plus the root and the per-event args objects.
    EXPECT_EQ(parsed.keyCount("ph"),
              soc.numPus() + static_cast<int>(run.trace.size()));
    EXPECT_EQ(parsed.keyCount("dur"),
              static_cast<int>(run.trace.size()));
    EXPECT_EQ(parsed.keyCount("traceEvents"), 1);
    EXPECT_EQ(parsed.keyCount("displayTimeUnit"), 1);
    EXPECT_GT(parsed.objects(),
              soc.numPus() + static_cast<int>(run.trace.size()));
}

// ---------------------------------------------------------------------
// Merging session-tagged timelines (the multi-tenant serving path).

TEST(TraceTimeline, MergeKeepsSessionsDistinguishable)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto octree = apps::octreeApp();
    const auto features = apps::featuresApp();

    // Two tenants, different applications, distinct session ids.
    SimExecConfig cfgA;
    cfgA.numTasks = 4;
    cfgA.sessionId = 7;
    const auto runA = SimExecutor(model, cfgA).execute(
        octree, Schedule::homogeneous(octree.numStages(), 0));

    SimExecConfig cfgB;
    cfgB.numTasks = 3;
    cfgB.sessionId = 12;
    const auto runB = SimExecutor(model, cfgB).execute(
        features, Schedule::homogeneous(features.numStages(), 1));

    ASSERT_FALSE(runA.trace.empty());
    ASSERT_FALSE(runB.trace.empty());
    EXPECT_EQ(runA.trace.sessionId(), 7);
    EXPECT_EQ(runB.trace.sessionId(), 12);

    // Merge into a default-constructed service-wide timeline, with
    // wall-clock offsets like a serving front end applies.
    runtime::TraceTimeline merged;
    merged.merge(runA.trace, 0.5);
    merged.merge(runB.trace, 2.0);
    EXPECT_EQ(merged.size(), runA.trace.size() + runB.trace.size());

    const auto st = merged.stats();
    EXPECT_NEAR(st.makespanSeconds,
                std::max(0.5 + runA.trace.stats().makespanSeconds,
                         2.0 + runB.trace.stats().makespanSeconds),
                1e-12);

    // Round-trip the merged export through the JSON parser: every
    // stage event carries its session id, and names resolve through
    // the per-session stage tables with an "s<id>:" prefix.
    const std::string json = merged.chromeJson();
    MiniJson parsed(json);
    ASSERT_TRUE(parsed.parse()) << json.substr(0, 200);
    EXPECT_EQ(parsed.keyCount("session"),
              static_cast<int>(merged.size()));
    EXPECT_NE(json.find("\"s7:" + octree.stage(0).name()),
              std::string::npos);
    EXPECT_NE(json.find("\"s12:" + features.stage(0).name()),
              std::string::npos);
    // No cross-tenant leakage: session 12 never shows octree names.
    EXPECT_EQ(json.find("\"s12:" + octree.stage(0).name()),
              std::string::npos);

    // Merging is associative over already-merged timelines.
    runtime::TraceTimeline outer;
    outer.merge(merged, 0.0);
    EXPECT_EQ(outer.size(), merged.size());
    MiniJson outerParsed(outer.chromeJson());
    EXPECT_TRUE(outerParsed.parse());

    // Untagged runs keep the legacy export: no session args at all.
    SimExecConfig plain;
    plain.numTasks = 2;
    const auto runPlain = SimExecutor(model, plain).execute(
        octree, Schedule::homogeneous(octree.numStages(), 0));
    MiniJson plainParsed(runPlain.trace.chromeJson());
    ASSERT_TRUE(plainParsed.parse());
    EXPECT_EQ(plainParsed.keyCount("session"), 0);
}

TEST(TraceTimeline, MergeResolvesNamesPerRunWithinOneSession)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto octree = apps::octreeApp();
    const auto features = apps::featuresApp();

    // One tenant session running two different applications: each
    // merged run must keep resolving against the stage names it ran
    // with (name tables travel per run, not per session).
    SimExecConfig cfg;
    cfg.numTasks = 2;
    cfg.sessionId = 3;
    const auto runA = SimExecutor(model, cfg).execute(
        octree, Schedule::homogeneous(octree.numStages(), 0));
    const auto runB = SimExecutor(model, cfg).execute(
        features, Schedule::homogeneous(features.numStages(), 0));

    runtime::TraceTimeline merged;
    merged.merge(runA.trace, 0.0);
    merged.merge(runB.trace, 1.0);
    const std::string json = merged.chromeJson();
    MiniJson parsed(json);
    ASSERT_TRUE(parsed.parse());
    EXPECT_NE(json.find("\"s3:" + octree.stage(0).name()),
              std::string::npos);
    EXPECT_NE(json.find("\"s3:" + features.stage(0).name()),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Trace agrees with the unified result.

TEST(VirtualBackendTrace, AgreesWithRunResult)
{
    auto soc = platform::jetsonOrinNano();
    soc.noiseSigma = 0.0;
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();

    SimExecConfig cfg;
    cfg.numTasks = 8;
    const SimExecutor exec(model, cfg);
    const auto schedule = Schedule::fromAssignment({0, 0, 0, 1, 1, 1, 1});
    const auto run = exec.execute(app, schedule);

    // Every (task, stage) pair appears exactly once.
    EXPECT_EQ(run.trace.size(),
              static_cast<std::size_t>(cfg.numTasks * app.numStages()));

    const auto st = run.trace.stats();
    EXPECT_NEAR(st.makespanSeconds, run.makespanSeconds,
                1e-9 * run.makespanSeconds);
    // Chunk busy fractions and trace occupancy describe the same run
    // (chunk c of this schedule is alone on its PU).
    for (int c = 0; c < schedule.numChunks(); ++c) {
        const int pu = schedule.chunks()[static_cast<std::size_t>(c)].pu;
        EXPECT_NEAR(
            st.perPu[static_cast<std::size_t>(pu)].occupancy,
            run.chunkBusyFraction[static_cast<std::size_t>(c)],
            1e-9);
    }
    // Pipelined chunks must overlap at least once.
    EXPECT_GT(st.interferedFraction, 0.0);
    EXPECT_GT(st.coResidency(0, 1), 0.0);
    // Disabling recording yields an identical measurement, no trace.
    SimExecConfig quiet = cfg;
    quiet.recordTrace = false;
    const auto bare = SimExecutor(model, quiet).execute(app, schedule);
    EXPECT_DOUBLE_EQ(bare.makespanSeconds, run.makespanSeconds);
    EXPECT_TRUE(bare.trace.empty());
}

TEST(GreedyRuntimeTrace, AgreesWithRunResult)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);

    DynamicExecConfig cfg;
    cfg.numTasks = 10;
    const DynamicExecutor dyn(model, profile.interference, cfg);
    const auto run = dyn.execute(app);

    EXPECT_EQ(run.trace.size(),
              static_cast<std::size_t>(cfg.numTasks * app.numStages()));
    const auto st = run.trace.stats();
    EXPECT_NEAR(st.makespanSeconds, run.makespanSeconds,
                1e-9 * run.makespanSeconds);
    EXPECT_GT(run.energyJoules, 0.0);
    MiniJson parsed(run.trace.chromeJson());
    EXPECT_TRUE(parsed.parse());
}

// ---------------------------------------------------------------------
// S2: cross-backend equivalence. A small integer pipeline whose outputs
// are bit-exactly checkable, run under EVERY enumerable schedule of the
// native host, on both time backends.

constexpr int kEquivElems = 256;

std::uint32_t
mixInput(std::uint64_t seed, std::int64_t task, int i)
{
    std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull
                              * static_cast<std::uint64_t>(task + 1));
    x ^= static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    return static_cast<std::uint32_t>(x * 0x94d049bb133111ebull >> 32);
}

void
stage0(std::uint32_t& x)
{
    x = x * 2654435761u + 0x9e37u;
}

void
stage1(std::uint32_t& x)
{
    x ^= x >> 13;
    x *= 0x85ebca6bu;
}

void
stage2(std::uint32_t& x)
{
    x += (x << 7 | x >> 25) ^ 0xc2b2ae35u;
}

struct Fingerprints
{
    std::mutex mutex;
    std::map<std::int64_t, std::uint64_t> byTask;
};

/** 3-stage elementwise integer pipeline with exact validation. */
Application
equivalenceApp(std::uint64_t device_seed,
               std::shared_ptr<Fingerprints> fp)
{
    Application app("Equivalence", "token", "test");
    auto add = [&](const char* name, void (*fn)(std::uint32_t&)) {
        platform::WorkProfile w;
        w.flops = 1e5;
        w.bytes = 1e3;
        w.parallelFraction = 1.0;
        w.pattern = platform::Pattern::Dense;
        app.addStage(Stage(name, w,
                           [fn](KernelCtx& ctx) {
                               for (auto& x :
                                    ctx.task.view<std::uint32_t>(
                                        "data"))
                                   fn(x);
                           },
                           nullptr));
    };
    add("s0", stage0);
    add("s1", stage1);
    add("s2", stage2);

    app.setTaskFactory([](std::int64_t task, std::uint64_t seed) {
        auto obj = std::make_unique<TaskObject>();
        obj->addBuffer("data", kEquivElems * sizeof(std::uint32_t));
        auto data = obj->view<std::uint32_t>("data");
        for (int i = 0; i < kEquivElems; ++i)
            data[static_cast<std::size_t>(i)] = mixInput(seed, task, i);
        return obj;
    });
    app.setTaskRefresher(
        [](TaskObject& obj, std::int64_t task, std::uint64_t seed) {
            obj.setTaskIndex(task);
            auto data = obj.view<std::uint32_t>("data");
            for (int i = 0; i < kEquivElems; ++i)
                data[static_cast<std::size_t>(i)]
                    = mixInput(seed, task, i);
        });
    app.setValidator([device_seed, fp](const TaskObject& obj) {
        const std::int64_t task = obj.taskIndex();
        const auto data = obj.view<const std::uint32_t>("data");
        std::uint64_t hash = 1469598103934665603ull;
        for (int i = 0; i < kEquivElems; ++i) {
            std::uint32_t expect = mixInput(device_seed, task, i);
            stage0(expect);
            stage1(expect);
            stage2(expect);
            if (data[static_cast<std::size_t>(i)] != expect)
                return std::string("element ") + std::to_string(i)
                    + " mismatch";
            hash = (hash ^ expect) * 1099511628211ull;
        }
        std::lock_guard<std::mutex> lock(fp->mutex);
        fp->byTask[task] = hash;
        return std::string();
    });
    return app;
}

TEST(CrossBackendEquivalence, AllSchedulesAllBackendsBitIdentical)
{
    const auto soc = platform::nativeHost();
    const platform::PerfModel model(soc);
    auto fp = std::make_shared<Fingerprints>();
    const auto app = equivalenceApp(soc.seed, fp);

    const int num_tasks = 8;
    const auto schedules
        = enumerateSchedules(app.numStages(), soc.numPus());
    ASSERT_GT(schedules.size(), 1u);

    // Reference: every backend and schedule must reproduce these.
    std::map<std::int64_t, std::uint64_t> reference;

    for (const auto& schedule : schedules) {
        for (const bool host : {false, true}) {
            fp->byTask.clear();
            runtime::RunResult run;
            if (host) {
                NativeExecConfig cfg;
                cfg.numTasks = num_tasks;
                run = NativeExecutor(soc, cfg).execute(app, schedule);
            } else {
                SimExecConfig cfg;
                cfg.numTasks = num_tasks;
                cfg.runKernels = true;
                run = SimExecutor(model, cfg).execute(app, schedule);
            }
            const std::string label = (host ? "host " : "virtual ")
                + schedule.compactString();
            EXPECT_TRUE(run.validationErrors.empty())
                << label << ": " << run.validationErrors.front();
            EXPECT_EQ(run.tasks, num_tasks) << label;
            EXPECT_EQ(fp->byTask.size(),
                      static_cast<std::size_t>(num_tasks))
                << label;
            EXPECT_EQ(run.trace.size(),
                      static_cast<std::size_t>(num_tasks
                                               * app.numStages()))
                << label;
            if (reference.empty())
                reference = fp->byTask;
            else
                EXPECT_EQ(fp->byTask, reference) << label;
        }
    }
}

// ---------------------------------------------------------------------
// S3: deterministic noise plumbing, uniform across executors.

TEST(NoiseSalt, SameSaltReproducesStaticPipelineExactly)
{
    const auto soc = platform::pixel7a(); // noisy device
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const auto schedule = Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2});

    SimExecConfig cfg;
    cfg.noiseSalt = 0xfeedface;
    const auto a = SimExecutor(model, cfg).execute(app, schedule);
    const auto b = SimExecutor(model, cfg).execute(app, schedule);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.taskIntervalSeconds, b.taskIntervalSeconds);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);

    SimExecConfig other = cfg;
    other.noiseSalt = 0xdeadbeef;
    const auto c = SimExecutor(model, other).execute(app, schedule);
    EXPECT_NE(a.makespanSeconds, c.makespanSeconds);
}

TEST(NoiseSalt, SameSaltReproducesDynamicRunExactly)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const Profiler profiler(model);
    const auto profile = profiler.profile(app);

    DynamicExecConfig cfg;
    cfg.noiseSalt = 0xfeedface;
    const DynamicExecutor dyn(model, profile.interference, cfg);
    const auto a = dyn.execute(app);
    const auto b = dyn.execute(app);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);

    DynamicExecConfig other = cfg;
    other.noiseSalt = 0xdeadbeef;
    const DynamicExecutor dyn2(model, profile.interference, other);
    EXPECT_NE(dyn2.execute(app).makespanSeconds, a.makespanSeconds);
}

// ---------------------------------------------------------------------
// The end-to-end flow surfaces the deployed run's timeline.

TEST(PipelineFlow, ReportCarriesDeployedTrace)
{
    const auto soc = platform::pixel7a();
    BetterTogetherConfig cfg;
    cfg.autotune = false;
    const BetterTogether flow(soc, cfg);
    const auto report = flow.run(apps::octreeApp());

    ASSERT_FALSE(report.deployedRun.trace.empty());
    EXPECT_EQ(report.deployedRun.trace.size(),
              static_cast<std::size_t>(report.deployedRun.tasks * 7));
    const auto st = report.deployedRun.trace.stats();
    EXPECT_NEAR(st.makespanSeconds,
                report.deployedRun.makespanSeconds,
                1e-9 * st.makespanSeconds);
    MiniJson parsed(report.deployedRun.trace.chromeJson());
    EXPECT_TRUE(parsed.parse());
}

// ---------------------------------------------------------------------
// Chrome-trace JSON escaping of hostile names.

/** Decode one JSON string body (no surrounding quotes), RFC 8259. */
std::string
jsonUnescape(const std::string& s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        ++i;
        EXPECT_LT(i, s.size()) << "dangling backslash";
        switch (s[i]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            EXPECT_LE(i + 4, s.size() - 1) << "truncated \\u escape";
            const unsigned code = static_cast<unsigned>(
                std::stoul(s.substr(i + 1, 4), nullptr, 16));
            EXPECT_LT(code, 0x80u) << "test only decodes ASCII";
            out += static_cast<char>(code);
            i += 4;
            break;
          }
          default:
            ADD_FAILURE() << "unknown escape \\" << s[i];
        }
    }
    return out;
}

TEST(TraceTimeline, ChromeJsonEscapesHostileNames)
{
    // Quotes, backslashes, every shorthand control escape, and a raw
    // C0 byte that only \u00XX can represent.
    const std::string stage = "st\"age\\one\n\twith\rctl\x01end";
    const std::string pu = "pu\"zero\\\x02";
    const std::string backend = "back\bend\f";
    const std::string note = "no\"te\\\x1f";

    runtime::TraceTimeline tl(backend, 1, {pu}, {stage});
    using runtime::TraceEventKind;
    tl.record({0, 0, 0, 0, 0.0, 0.0, 1.0, {}, TraceEventKind::Stage,
               {}});
    tl.record(runtime::makeFaultEvent(TraceEventKind::Retry, 0, 0, 0,
                                      0, 1.0, 1.1, note));
    const std::string json = tl.chromeJson();

    // Structurally valid JSON with no raw control characters.
    MiniJson parsed(json);
    ASSERT_TRUE(parsed.parse()) << json.substr(0, 400);
    for (const char c : json)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20)
            << "raw control character leaked into the trace JSON";

    // Every hostile string round-trips bit-exactly through a real
    // unescape of its emitted form.
    auto roundTrips = [&](const std::string& original) {
        const std::string expected = [&] {
            std::string e;
            for (const char c : original) {
                switch (c) {
                  case '"': e += "\\\""; break;
                  case '\\': e += "\\\\"; break;
                  case '\b': e += "\\b"; break;
                  case '\f': e += "\\f"; break;
                  case '\n': e += "\\n"; break;
                  case '\r': e += "\\r"; break;
                  case '\t': e += "\\t"; break;
                  default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof buf, "\\u%04x",
                                      static_cast<unsigned>(
                                          static_cast<unsigned char>(
                                              c)));
                        e += buf;
                    } else {
                        e += c;
                    }
                }
            }
            return e;
        }();
        EXPECT_NE(json.find(expected), std::string::npos)
            << "escaped form of \"" << expected << "\" not in JSON";
        EXPECT_EQ(jsonUnescape(expected), original);
    };
    roundTrips(stage);
    roundTrips(pu);
    roundTrips(backend);
    roundTrips(note);
}

} // namespace
} // namespace bt::core
