/**
 * @file
 * Cross-cutting property tests: invariants of the performance model
 * over every device and pattern, schedule-cost algebra, engine work
 * conservation under randomized task sets, and optimizer contracts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/optimizer.hpp"
#include "core/schedule.hpp"
#include "platform/devices.hpp"
#include "platform/perf_model.hpp"
#include "sim/engine.hpp"

namespace bt {
namespace {

using platform::Load;
using platform::Pattern;
using platform::PerfModel;
using platform::WorkProfile;

struct ModelCase
{
    int device;
    int pattern;
};

class ModelProperties : public ::testing::TestWithParam<ModelCase>
{
  protected:
    platform::SocDescription soc = platform::paperDevices()
        [static_cast<std::size_t>(GetParam().device)];
    Pattern pattern = static_cast<Pattern>(GetParam().pattern);
};

TEST_P(ModelProperties, TimeMonotoneInFlops)
{
    const PerfModel model(soc);
    for (int p = 0; p < soc.numPus(); ++p) {
        double prev = 0.0;
        for (double flops : {1e5, 1e6, 1e7, 1e8}) {
            WorkProfile w{flops, 1e4, 0.99, pattern};
            const double t = model.isolatedTime(w, p);
            EXPECT_GT(t, prev);
            prev = t;
        }
    }
}

TEST_P(ModelProperties, TimeMonotoneInBytes)
{
    const PerfModel model(soc);
    for (int p = 0; p < soc.numPus(); ++p) {
        double prev = -1.0;
        for (double bytes : {1e4, 1e6, 1e8}) {
            WorkProfile w{1e5, bytes, 0.99, pattern};
            const double t = model.isolatedTime(w, p);
            EXPECT_GE(t, prev);
            prev = t;
        }
    }
}

TEST_P(ModelProperties, MoreParallelFractionNeverSlower)
{
    const PerfModel model(soc);
    for (int p = 0; p < soc.numPus(); ++p) {
        WorkProfile serial{1e8, 1e4, 0.2, pattern};
        WorkProfile parallel = serial;
        parallel.parallelFraction = 0.95;
        EXPECT_LE(model.isolatedTime(parallel, p),
                  model.isolatedTime(serial, p) + 1e-15);
    }
}

TEST_P(ModelProperties, InterferenceHeavyEqualsTimeOfFullSet)
{
    // interferenceHeavyTime must be consistent with timeOf on the
    // same-kernel-everywhere active set it documents.
    const PerfModel model(soc);
    WorkProfile w{1e7, 1e6, 0.99, pattern};
    for (int p = 0; p < soc.numPus(); ++p) {
        std::vector<Load> loads;
        std::size_t self = 0;
        for (int q = 0; q < soc.numPus(); ++q) {
            if (q == p)
                self = loads.size();
            loads.push_back(Load{&w, q});
        }
        EXPECT_DOUBLE_EQ(model.interferenceHeavyTime(w, p),
                         model.timeOf(self, loads));
    }
}

TEST_P(ModelProperties, CpuWorkScaleOnlyAffectsCpus)
{
    const PerfModel model(soc);
    WorkProfile base{1e8, 1e3, 1.0, pattern};
    WorkProfile scaled = base;
    scaled.cpuWorkScale = 5.0;
    for (int p = 0; p < soc.numPus(); ++p) {
        const double t0 = model.isolatedTime(base, p);
        const double t1 = model.isolatedTime(scaled, p);
        if (soc.pu(p).kind == platform::PuKind::Cpu)
            EXPECT_GT(t1, t0 * 2.0);
        else
            EXPECT_DOUBLE_EQ(t1, t0);
    }
}

std::vector<ModelCase>
allModelCases()
{
    std::vector<ModelCase> cases;
    for (int d = 0; d < 4; ++d)
        for (int p = 0; p < platform::kNumPatterns; ++p)
            cases.push_back(ModelCase{d, p});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(DevicesAndPatterns, ModelProperties,
                         ::testing::ValuesIn(allModelCases()));

TEST(ScheduleAlgebra, HomogeneousGapnessIsZero)
{
    core::ProfilingTable t({"a", "b", "c"}, {"x", "y"});
    Rng rng(1);
    for (int s = 0; s < 3; ++s)
        for (int p = 0; p < 2; ++p)
            t.set(s, p, rng.nextRange(0.5, 2.0));
    for (int p = 0; p < 2; ++p)
        EXPECT_DOUBLE_EQ(
            core::Schedule::homogeneous(3, p).gapness(t), 0.0);
}

TEST(ScheduleAlgebra, BottleneckAtLeastLargestStage)
{
    core::ProfilingTable t({"a", "b", "c", "d"}, {"x", "y", "z"});
    Rng rng(2);
    for (int s = 0; s < 4; ++s)
        for (int p = 0; p < 3; ++p)
            t.set(s, p, rng.nextRange(0.1, 1.0));
    for (const auto& sched : core::enumerateSchedules(4, 3)) {
        double floor = 0.0;
        for (int s = 0; s < 4; ++s)
            floor = std::max(floor, t.at(s, sched.puOfStage(s)));
        EXPECT_GE(sched.bottleneckTime(t), floor - 1e-15);
    }
}

TEST(ScheduleAlgebra, ChunkTimesSumToAllStages)
{
    core::ProfilingTable t({"a", "b", "c", "d", "e"}, {"x", "y"});
    Rng rng(3);
    for (int s = 0; s < 5; ++s)
        for (int p = 0; p < 2; ++p)
            t.set(s, p, rng.nextRange(0.1, 1.0));
    for (const auto& sched : core::enumerateSchedules(5, 2)) {
        double total = 0.0;
        for (int c = 0; c < sched.numChunks(); ++c)
            total += sched.chunkTime(t, c);
        double per_stage = 0.0;
        for (int s = 0; s < 5; ++s)
            per_stage += t.at(s, sched.puOfStage(s));
        EXPECT_NEAR(total, per_stage, 1e-12);
    }
}

class EngineRandomized : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineRandomized, WorkConservation)
{
    // Total completed work must equal total injected work: integrate
    // rates over intervals via the onAdvance hook and compare.
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
    double injected = 0.0;
    double integrated = 0.0;

    // The rate callback maintains the current total rate; onAdvance
    // integrates it over every constant-rate interval. The sum of
    // integrated rate must equal the work injected.
    double current_rate_sum = 0.0;
    sim::Engine engine(
        [&](std::span<const sim::ActiveTask> active,
            std::span<double> rates) {
            double sum = 0.0;
            for (std::size_t i = 0; i < active.size(); ++i) {
                rates[i] = 0.5
                    + static_cast<double>((active[i].tag * 7) % 5);
                sum += rates[i];
            }
            current_rate_sum = sum;
        });
    engine.onAdvance([&](double t0, double t1) {
        integrated += current_rate_sum * (t1 - t0);
    });

    int started = 0;
    engine.onComplete([&](sim::TaskId, std::uint64_t tag) {
        if (started < 40 && tag % 3 == 0) {
            const double work = rng.nextRange(0.1, 2.0);
            injected += work;
            engine.startTask(static_cast<std::uint64_t>(100 + started),
                             work);
            ++started;
        }
    });
    for (int i = 0; i < 10; ++i) {
        const double work = rng.nextRange(0.1, 2.0);
        injected += work;
        engine.startTask(static_cast<std::uint64_t>(i), work);
        ++started;
    }
    engine.run();
    EXPECT_NEAR(integrated, injected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomized,
                         ::testing::Range(0, 8));

TEST(OptimizerContract, TopCandidateEqualsUnrestrictedOptimum)
{
    // Without the utilization filter, the first candidate's predicted
    // latency is exactly the space-wide optimum.
    const auto soc = platform::jetsonOrinNano();
    core::ProfilingTable t({"a", "b", "c", "d"}, {"cpu", "gpu"});
    Rng rng(4);
    for (int s = 0; s < 4; ++s)
        for (int p = 0; p < 2; ++p)
            t.set(s, p, rng.nextRange(0.2, 2.0));
    core::PlannerSpec cfg;
    cfg.utilizationFilter = false;
    core::Optimizer opt(soc, t, cfg);
    const auto cands = opt.optimize();
    double best = 1e300;
    for (const auto& s : core::enumerateSchedules(4, 2))
        best = std::min(best, s.bottleneckTime(t));
    EXPECT_DOUBLE_EQ(cands.front().predictedLatency, best);
    EXPECT_DOUBLE_EQ(opt.stats().unrestrictedLatency, best);
}

TEST(OptimizerContract, TierCapLimitsRepeatedCriticalChunks)
{
    const auto soc = platform::pixel7a();
    core::ProfilingTable t({"a", "b", "c", "d", "e"},
                           {"little", "mid", "big", "gpu"});
    Rng rng(5);
    for (int s = 0; s < 5; ++s)
        for (int p = 0; p < 4; ++p)
            t.set(s, p, rng.nextRange(0.2, 2.0));
    core::PlannerSpec cfg;
    cfg.maxPerTier = 2;
    core::Optimizer opt(soc, t, cfg);
    const auto cands = opt.optimize();

    std::map<std::string, int> tier_counts;
    for (const auto& c : cands) {
        // Identify the critical chunk (bottleneck).
        int best_chunk = 0;
        double worst = -1.0;
        for (int ch = 0; ch < c.schedule.numChunks(); ++ch) {
            const double time = c.schedule.chunkTime(t, ch);
            if (time > worst) {
                worst = time;
                best_chunk = ch;
            }
        }
        const auto& chunk = c.schedule.chunks()[static_cast<
            std::size_t>(best_chunk)];
        const std::string key = std::to_string(chunk.firstStage) + "-"
            + std::to_string(chunk.lastStage) + "@"
            + std::to_string(chunk.pu);
        EXPECT_LE(++tier_counts[key], 2) << key;
    }
}

} // namespace
} // namespace bt
