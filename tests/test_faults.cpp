/**
 * @file
 * Tests for the fault-injection and recovery layer: the empty-plan
 * bit-identity invariant across every enumerable schedule, seeded
 * determinism of injected faults and every recovery decision,
 * exactly-once kernel semantics under retries in both time backends,
 * timeout/straggler interplay, slowdown windows, mid-stream PU dropout
 * with graceful degradation, and the FaultPlan JSON round trip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>

#include "apps/octree_app.hpp"
#include "core/native_executor.hpp"
#include "core/sim_executor.hpp"
#include "platform/devices.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/run_types.hpp"

namespace bt::core {
namespace {

// ---------------------------------------------------------------------
// A tiny 3-stage pipeline whose kernels are invertible integer maps, so
// a validator can prove each stage ran exactly once per task - the
// property retries must preserve.

constexpr int kElems = 64;

std::uint32_t
seedInput(std::uint64_t seed, std::int64_t task, int i)
{
    std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull
                              * static_cast<std::uint64_t>(task + 1));
    x ^= static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull;
    return static_cast<std::uint32_t>(x >> 16);
}

void
mapA(std::uint32_t& x)
{
    x = x * 2654435761u + 17u;
}

void
mapB(std::uint32_t& x)
{
    x ^= x >> 11;
}

void
mapC(std::uint32_t& x)
{
    x += 0x9e3779b9u;
}

Application
exactlyOnceApp(std::uint64_t device_seed)
{
    Application app("ExactlyOnce", "token", "test");
    auto add = [&](const char* name, void (*fn)(std::uint32_t&)) {
        platform::WorkProfile w;
        w.flops = 1e5;
        w.bytes = 1e3;
        w.parallelFraction = 1.0;
        w.pattern = platform::Pattern::Dense;
        app.addStage(Stage(name, w,
                           [fn](KernelCtx& ctx) {
                               for (auto& x :
                                    ctx.task.view<std::uint32_t>(
                                        "data"))
                                   fn(x);
                           },
                           nullptr));
    };
    add("a", mapA);
    add("b", mapB);
    add("c", mapC);

    app.setTaskFactory([](std::int64_t task, std::uint64_t seed) {
        auto obj = std::make_unique<TaskObject>();
        obj->addBuffer("data", kElems * sizeof(std::uint32_t));
        auto data = obj->view<std::uint32_t>("data");
        for (int i = 0; i < kElems; ++i)
            data[static_cast<std::size_t>(i)] = seedInput(seed, task, i);
        return obj;
    });
    app.setTaskRefresher(
        [](TaskObject& obj, std::int64_t task, std::uint64_t seed) {
            obj.setTaskIndex(task);
            auto data = obj.view<std::uint32_t>("data");
            for (int i = 0; i < kElems; ++i)
                data[static_cast<std::size_t>(i)]
                    = seedInput(seed, task, i);
        });
    app.setValidator([device_seed](const TaskObject& obj) {
        const std::int64_t task = obj.taskIndex();
        const auto data = obj.view<const std::uint32_t>("data");
        for (int i = 0; i < kElems; ++i) {
            std::uint32_t expect = seedInput(device_seed, task, i);
            mapA(expect);
            mapB(expect);
            mapC(expect);
            if (data[static_cast<std::size_t>(i)] != expect)
                return std::string("element ") + std::to_string(i)
                    + " ran a stage zero or twice";
        }
        return std::string();
    });
    return app;
}

int
countKind(const runtime::TraceTimeline& trace,
          runtime::TraceEventKind kind)
{
    int n = 0;
    for (const auto& e : trace.events())
        n += e.kind == kind ? 1 : 0;
    return n;
}

void
expectSameStats(const runtime::RecoveryStats& a,
                const runtime::RecoveryStats& b)
{
    EXPECT_EQ(a.transientFaults, b.transientFaults);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.stragglers, b.stragglers);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.remaps, b.remaps);
    EXPECT_EQ(a.dropouts, b.dropouts);
    EXPECT_EQ(a.replans, b.replans);
    EXPECT_EQ(a.unrecovered, b.unrecovered);
    EXPECT_DOUBLE_EQ(a.backoffSeconds, b.backoffSeconds);
}

// ---------------------------------------------------------------------
// S1: an empty FaultPlan is bit-identical to a run without the fault
// machinery, across every enumerable schedule of the small app.

TEST(EmptyFaultPlan, BitIdenticalAcrossAllSchedules)
{
    const auto soc = platform::pixel7a(); // noisy device
    const platform::PerfModel model(soc);
    const auto app = exactlyOnceApp(soc.seed);

    SimExecConfig plain;
    plain.numTasks = 6;

    // Same run with the whole recovery config populated: an empty plan
    // must keep every fault path cold regardless of the policy.
    SimExecConfig armed = plain;
    armed.faults.faultSeed = 0xabcdef;
    armed.recovery.timeoutFactor = 2.0;
    armed.recovery.maxRetries = 9;
    ASSERT_TRUE(armed.faults.empty());

    for (const auto& schedule :
         enumerateSchedules(app.numStages(), soc.numPus())) {
        const auto a = SimExecutor(model, plain).execute(app, schedule);
        const auto b = SimExecutor(model, armed).execute(app, schedule);
        const auto label = schedule.compactString();
        EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds) << label;
        EXPECT_DOUBLE_EQ(a.taskIntervalSeconds, b.taskIntervalSeconds)
            << label;
        EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds)
            << label;
        EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules) << label;
        EXPECT_EQ(a.trace.size(), b.trace.size()) << label;
        EXPECT_TRUE(b.recovery.cleanRun()) << label;
        EXPECT_EQ(b.trace.stats().recoveryEvents, 0) << label;
    }
}

// ---------------------------------------------------------------------
// S2: fixed seeds reproduce every fault and every recovery decision.

TEST(FaultDeterminism, SameSaltReproducesFaultsAndRecoveryExactly)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const auto schedule
        = Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2});

    SimExecConfig cfg;
    cfg.noiseSalt = 0xfeedface;
    cfg.faults.transients.push_back({-1, -1, 0.2});
    cfg.faults.stragglers.push_back({-1, 0.1, 4.0});

    const auto a = SimExecutor(model, cfg).execute(app, schedule);
    const auto b = SimExecutor(model, cfg).execute(app, schedule);
    EXPECT_GT(a.recovery.transientFaults, 0);
    EXPECT_GT(a.recovery.retries, 0);
    EXPECT_EQ(a.recovery.unrecovered, 0);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    expectSameStats(a.recovery, b.recovery);
    EXPECT_EQ(a.trace.size(), b.trace.size());

    // A different fault seed draws a different fault pattern.
    SimExecConfig other = cfg;
    other.faults.faultSeed = 0x5eed;
    const auto c = SimExecutor(model, other).execute(app, schedule);
    EXPECT_TRUE(c.makespanSeconds != a.makespanSeconds
                || c.recovery.transientFaults
                       != a.recovery.transientFaults);
}

TEST(FaultDeterminism, InjectorIsAPureFunctionOfItsInputs)
{
    runtime::FaultPlan plan;
    plan.transients.push_back({2, -1, 0.5});
    plan.stragglers.push_back({-1, 0.5, 8.0});
    const runtime::FaultInjector x(plan, 42);
    const runtime::FaultInjector y(plan, 42);
    const runtime::FaultInjector z(plan, 43);

    int diverged = 0;
    for (std::int64_t task = 0; task < 64; ++task) {
        EXPECT_EQ(x.transientFailure(task, 2, 0, 0),
                  y.transientFailure(task, 2, 0, 0));
        EXPECT_DOUBLE_EQ(x.stragglerFactor(task, 1, 0),
                         y.stragglerFactor(task, 1, 0));
        diverged += x.transientFailure(task, 2, 0, 0)
                 != z.transientFailure(task, 2, 0, 0);
        // The rule filters on stage 2: other stages never fail.
        EXPECT_FALSE(x.transientFailure(task, 1, 0, 0));
    }
    EXPECT_GT(diverged, 0);
}

// ---------------------------------------------------------------------
// Retries preserve exactly-once kernel semantics in both backends.

TEST(FaultRecovery, VirtualRetriesKeepKernelsExactlyOnce)
{
    const auto soc = platform::nativeHost();
    const platform::PerfModel model(soc);
    const auto app = exactlyOnceApp(soc.seed);

    SimExecConfig cfg;
    cfg.numTasks = 16;
    cfg.runKernels = true;
    cfg.faults.transients.push_back({-1, -1, 0.25});

    const auto run = SimExecutor(model, cfg)
                         .execute(app, Schedule::fromAssignment(
                                           {0, 1, 1}));
    EXPECT_TRUE(run.validationErrors.empty())
        << run.validationErrors.front();
    EXPECT_EQ(run.tasks, 16);
    EXPECT_GT(run.recovery.transientFaults, 0);
    EXPECT_GT(run.recovery.retries, 0);
    EXPECT_EQ(countKind(run.trace, runtime::TraceEventKind::Transient),
              run.recovery.transientFaults);
    EXPECT_EQ(countKind(run.trace, runtime::TraceEventKind::Stage),
              16 * app.numStages());
}

TEST(FaultRecovery, HostRetriesKeepKernelsExactlyOnce)
{
    const auto soc = platform::nativeHost();
    const auto app = exactlyOnceApp(soc.seed);

    NativeExecConfig cfg;
    cfg.numTasks = 16;
    cfg.faults.transients.push_back({-1, -1, 0.25});

    const auto run = NativeExecutor(soc, cfg)
                         .execute(app, Schedule::fromAssignment(
                                           {0, 1, 1}));
    EXPECT_TRUE(run.validationErrors.empty())
        << run.validationErrors.front();
    EXPECT_EQ(run.tasks, 16);
    EXPECT_GT(run.recovery.transientFaults, 0);
    EXPECT_GT(run.recovery.retries, 0);
    EXPECT_EQ(run.recovery.unrecovered, 0);
    // Host transient draws are coordinate-seeded too, so the injected
    // fault count is reproducible even though wall timing is not.
    const auto again = NativeExecutor(soc, cfg)
                           .execute(app, Schedule::fromAssignment(
                                           {0, 1, 1}));
    EXPECT_EQ(again.recovery.transientFaults,
              run.recovery.transientFaults);
}

// ---------------------------------------------------------------------
// Timeout watchdog: stragglers big enough to blow the budget are
// aborted and retried; the run still completes every task.

TEST(FaultRecovery, StragglersTripTimeoutsAndRecover)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();

    SimExecConfig cfg;
    cfg.faults.stragglers.push_back({-1, 0.05, 100.0});
    cfg.recovery.timeoutFactor = 8.0;

    const auto run
        = SimExecutor(model, cfg)
              .execute(app,
                       Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2}));
    EXPECT_EQ(run.tasks, 30);
    EXPECT_GT(run.recovery.stragglers, 0);
    EXPECT_GT(run.recovery.timeouts, 0);
    EXPECT_GT(run.recovery.retries, 0);
    EXPECT_EQ(run.recovery.unrecovered, 0);
    EXPECT_EQ(countKind(run.trace, runtime::TraceEventKind::Timeout),
              run.recovery.timeouts);
}

// ---------------------------------------------------------------------
// Slowdown windows stretch the makespan, deterministically.

TEST(FaultInjection, SlowdownWindowStretchesTheRun)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const auto schedule
        = Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2});

    SimExecConfig clean;
    const auto base = SimExecutor(model, clean).execute(app, schedule);

    // Throttle the bottleneck chunk's PU: the whole stream slows.
    SimExecConfig cfg;
    cfg.faults.slowdowns.push_back({0, 0.0, 10.0, 0.4});
    const auto slow = SimExecutor(model, cfg).execute(app, schedule);
    EXPECT_GT(slow.makespanSeconds, 1.2 * base.makespanSeconds);
    EXPECT_EQ(slow.tasks, base.tasks);
    EXPECT_EQ(slow.recovery.unrecovered, 0);

    const auto slow2 = SimExecutor(model, cfg).execute(app, schedule);
    EXPECT_DOUBLE_EQ(slow.makespanSeconds, slow2.makespanSeconds);
}

// ---------------------------------------------------------------------
// Mid-stream PU dropout: graceful degradation re-plans on survivors and
// the stream still completes every task.

TEST(FaultRecovery, DropoutMidStreamCompletesAllTasks)
{
    const auto soc = platform::pixel7a();
    const platform::PerfModel model(soc);
    const auto app = apps::octreeApp();
    const auto schedule
        = Schedule::fromAssignment({0, 1, 1, 3, 3, 3, 2});

    SimExecConfig cfg;
    cfg.faults.dropouts.push_back({3, 0.02}); // lose the GPU mid-run

    const auto run = SimExecutor(model, cfg).execute(app, schedule);
    EXPECT_EQ(run.tasks, 30);
    EXPECT_EQ(run.recovery.dropouts, 1);
    EXPECT_EQ(run.recovery.replans, 1);
    EXPECT_GT(run.recovery.remaps, 0);
    EXPECT_EQ(run.recovery.unrecovered, 0);
    EXPECT_EQ(countKind(run.trace, runtime::TraceEventKind::Dropout),
              1);
    EXPECT_EQ(countKind(run.trace, runtime::TraceEventKind::Replan),
              1);
    EXPECT_EQ(countKind(run.trace, runtime::TraceEventKind::Stage),
              30 * app.numStages());
    // Nothing executes on the dead PU after the dropout instant.
    for (const auto& e : run.trace.events()) {
        if (e.isStage() && e.pu == 3) {
            EXPECT_LE(e.startSeconds, 0.02 + 1e-9);
        }
    }

    // With degradation off, per-chunk failover still finishes the run.
    SimExecConfig failover = cfg;
    failover.recovery.degrade = false;
    const auto alt = SimExecutor(model, failover).execute(app, schedule);
    EXPECT_EQ(alt.tasks, 30);
    EXPECT_EQ(alt.recovery.replans, 0);
    EXPECT_GT(alt.recovery.remaps, 0);
    EXPECT_EQ(alt.recovery.unrecovered, 0);
}

// ---------------------------------------------------------------------
// FaultPlan JSON round trip (the bt_explorer --faults format).

TEST(FaultPlanJson, RoundTripsThroughItsOwnSerialization)
{
    runtime::FaultPlan plan;
    plan.slowdowns.push_back({1, 0.1, 0.5, 0.4});
    plan.transients.push_back({2, 3, 0.05});
    plan.stragglers.push_back({-1, 0.01, 10.0});
    plan.dropouts.push_back({3, 0.2});
    plan.faultSeed = 7;

    std::stringstream ss;
    plan.toJson(ss);
    const auto parsed = runtime::FaultPlan::fromJson(ss);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->slowdowns.size(), 1u);
    EXPECT_EQ(parsed->slowdowns[0].pu, 1);
    EXPECT_DOUBLE_EQ(parsed->slowdowns[0].startSeconds, 0.1);
    EXPECT_DOUBLE_EQ(parsed->slowdowns[0].endSeconds, 0.5);
    EXPECT_DOUBLE_EQ(parsed->slowdowns[0].clockFactor, 0.4);
    ASSERT_EQ(parsed->transients.size(), 1u);
    EXPECT_EQ(parsed->transients[0].stage, 2);
    EXPECT_EQ(parsed->transients[0].pu, 3);
    EXPECT_DOUBLE_EQ(parsed->transients[0].probability, 0.05);
    ASSERT_EQ(parsed->stragglers.size(), 1u);
    EXPECT_EQ(parsed->stragglers[0].stage, -1);
    EXPECT_DOUBLE_EQ(parsed->stragglers[0].factor, 10.0);
    ASSERT_EQ(parsed->dropouts.size(), 1u);
    EXPECT_EQ(parsed->dropouts[0].pu, 3);
    EXPECT_DOUBLE_EQ(parsed->dropouts[0].atSeconds, 0.2);
    EXPECT_EQ(parsed->faultSeed, 7u);

    std::stringstream bad("{\"transients\": [{\"probability\": ");
    EXPECT_FALSE(runtime::FaultPlan::fromJson(bad).has_value());
}

// Every malformed input maps to one typed PlanParseError kind - never
// UB, a silent default, or a downstream validate() panic.
TEST(FaultPlanJson, MalformedInputsProduceTypedErrors)
{
    const auto parseKind = [](const std::string& text) {
        std::stringstream ss(text);
        runtime::PlanParseError err;
        const auto plan = runtime::FaultPlan::fromJson(ss, err);
        EXPECT_FALSE(plan.has_value()) << text;
        return err.kind;
    };

    // Truncated / non-JSON documents.
    EXPECT_EQ(parseKind("{\"transients\": [{\"probability\": "),
              runtime::PlanParseErrorKind::Syntax);
    EXPECT_EQ(parseKind("nonsense"),
              runtime::PlanParseErrorKind::Syntax);
    EXPECT_EQ(parseKind("{} trailing"),
              runtime::PlanParseErrorKind::Syntax);

    // Unknown sections / scalar members.
    EXPECT_EQ(parseKind("{\"slowups\": []}"),
              runtime::PlanParseErrorKind::UnknownSection);
    EXPECT_EQ(parseKind("{\"seed\": 7}"),
              runtime::PlanParseErrorKind::UnknownSection);

    // Unknown and missing row fields.
    EXPECT_EQ(parseKind("{\"dropouts\": [{\"pu\": 1, \"at\": 0.2, "
                        "\"when\": 3}]}"),
              runtime::PlanParseErrorKind::UnknownField);
    EXPECT_EQ(parseKind("{\"slowdowns\": [{\"pu\": 0, \"start\": 0}]}"),
              runtime::PlanParseErrorKind::MissingField);
    EXPECT_EQ(parseKind("{\"transients\": [{\"stage\": 1}]}"),
              runtime::PlanParseErrorKind::MissingField);
    EXPECT_EQ(parseKind("{\"dropouts\": [{\"pu\": 1}]}"),
              runtime::PlanParseErrorKind::MissingField);

    // Out-of-range PU / stage ids: negative or fractional.
    EXPECT_EQ(parseKind("{\"slowdowns\": [{\"pu\": -1, \"start\": 0, "
                        "\"end\": 1}]}"),
              runtime::PlanParseErrorKind::Range);
    EXPECT_EQ(parseKind("{\"dropouts\": [{\"pu\": 1.5, \"at\": 0.2}]}"),
              runtime::PlanParseErrorKind::Range);
    EXPECT_EQ(parseKind("{\"transients\": [{\"stage\": -2, "
                        "\"probability\": 0.1}]}"),
              runtime::PlanParseErrorKind::Range);

    // Out-of-domain values.
    EXPECT_EQ(parseKind("{\"slowdowns\": [{\"pu\": 0, \"start\": 0.5, "
                        "\"end\": 0.5}]}"),
              runtime::PlanParseErrorKind::Range);
    EXPECT_EQ(parseKind("{\"slowdowns\": [{\"pu\": 0, \"start\": 0, "
                        "\"end\": 1, \"clockFactor\": 1.5}]}"),
              runtime::PlanParseErrorKind::Range);
    EXPECT_EQ(parseKind("{\"transients\": [{\"probability\": 1.5}]}"),
              runtime::PlanParseErrorKind::Range);
    EXPECT_EQ(parseKind("{\"stragglers\": [{\"probability\": 0.1, "
                        "\"factor\": 0.5}]}"),
              runtime::PlanParseErrorKind::Range);
    EXPECT_EQ(parseKind("{\"faultSeed\": -1}"),
              runtime::PlanParseErrorKind::Range);

    // Same-PU overlapping slowdown windows.
    EXPECT_EQ(parseKind("{\"slowdowns\": ["
                        "{\"pu\": 1, \"start\": 0, \"end\": 1}, "
                        "{\"pu\": 1, \"start\": 0.5, \"end\": 2}]}"),
              runtime::PlanParseErrorKind::Overlap);

    // Disjoint windows on one PU, overlap across PUs: both fine.
    std::stringstream ok("{\"slowdowns\": ["
                         "{\"pu\": 1, \"start\": 0, \"end\": 1}, "
                         "{\"pu\": 1, \"start\": 1, \"end\": 2}, "
                         "{\"pu\": 0, \"start\": 0.5, \"end\": 3}]}");
    runtime::PlanParseError err;
    EXPECT_TRUE(runtime::FaultPlan::fromJson(ok, err).has_value());
}

TEST(FaultPlanJson, ParseErrorsCarryKindPrefixAndDetail)
{
    std::stringstream bad("{\"slowdowns\": [{\"pu\": 0, "
                          "\"start\": 0}]}");
    runtime::PlanParseError err;
    EXPECT_FALSE(runtime::FaultPlan::fromJson(bad, err).has_value());
    EXPECT_EQ(err.kind, runtime::PlanParseErrorKind::MissingField);
    const std::string text = err.toString();
    EXPECT_NE(text.find("[missing_field]"), std::string::npos);
    EXPECT_NE(text.find("slowdowns[0]"), std::string::npos);
    EXPECT_NE(text.find("\"end\""), std::string::npos);

    // Round trip: a valid plan's serialization parses strictly with no
    // error left behind in the typed overload either.
    runtime::FaultPlan plan;
    plan.slowdowns.push_back({1, 0.1, 0.5, 0.4});
    plan.dropouts.push_back({3, 0.2});
    std::stringstream ss;
    plan.toJson(ss);
    runtime::PlanParseError unused;
    const auto parsed = runtime::FaultPlan::fromJson(ss, unused);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->slowdowns.size(), 1u);
    EXPECT_EQ(parsed->dropouts.size(), 1u);
}

} // namespace
} // namespace bt::core
