/**
 * @file
 * Unit and property tests for the Octree pipeline kernels: Morton
 * encoding, radix sort, duplicate removal, prefix sum, the Karras radix
 * tree, and octree generation - each backend against references, plus
 * structural invariants on randomized inputs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "kernels/morton.hpp"
#include "kernels/octree.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/radix_tree.hpp"
#include "kernels/sort.hpp"
#include "kernels/unique.hpp"
#include "sched/thread_pool.hpp"

namespace bt::kernels {
namespace {

std::vector<std::uint32_t>
randomCodes(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
    for (auto& x : v)
        x = static_cast<std::uint32_t>(rng.nextU64())
            & ((1u << kMortonBits) - 1);
    return v;
}

/** Sorted, deduplicated random codes. */
std::vector<std::uint32_t>
uniqueSortedCodes(std::int64_t n, std::uint64_t seed)
{
    auto v = randomCodes(n, seed);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

TEST(Morton, ExpandBitsSpreads)
{
    EXPECT_EQ(expandBits3(0u), 0u);
    EXPECT_EQ(expandBits3(1u), 1u);
    EXPECT_EQ(expandBits3(0b11u), 0b1001u);
    EXPECT_EQ(expandBits3(0x3FFu) & 0x49249249u, 0x09249249u & 0x49249249u);
}

TEST(Morton, OriginAndMaxCorner)
{
    EXPECT_EQ(morton32(0.0f, 0.0f, 0.0f), 0u);
    const std::uint32_t max_code = morton32(0.999999f, 0.999999f,
                                            0.999999f);
    EXPECT_EQ(max_code, (1u << kMortonBits) - 1);
}

TEST(Morton, ClampsOutOfRange)
{
    EXPECT_EQ(morton32(-1.0f, -2.0f, -3.0f), 0u);
    EXPECT_EQ(morton32(5.0f, 5.0f, 5.0f), (1u << kMortonBits) - 1);
}

TEST(Morton, AxisOrderMatchesShift)
{
    // x in the highest interleave position, then y, then z.
    EXPECT_EQ(morton32(1.0f / 1024.0f * 1.0f, 0.0f, 0.0f), 4u);
    EXPECT_EQ(morton32(0.0f, 1.0f / 1024.0f, 0.0f), 2u);
    EXPECT_EQ(morton32(0.0f, 0.0f, 1.0f / 1024.0f), 1u);
}

TEST(Morton, LocalityOrdering)
{
    // Points in the low half of x sort before the high half.
    EXPECT_LT(morton32(0.1f, 0.9f, 0.9f), morton32(0.6f, 0.0f, 0.0f));
}

TEST(Morton, BackendsAgree)
{
    const std::int64_t n = 1000;
    Rng rng(3);
    std::vector<float> pts(static_cast<std::size_t>(3 * n));
    for (auto& p : pts)
        p = static_cast<float>(rng.nextDouble());
    std::vector<std::uint32_t> cpu(static_cast<std::size_t>(n));
    std::vector<std::uint32_t> gpu(static_cast<std::size_t>(n));
    sched::ThreadPool pool(3);
    mortonEncodeCpu(CpuExec{&pool}, pts, cpu, n);
    mortonEncodeGpu(GpuExec{}, pts, gpu, n);
    EXPECT_EQ(cpu, gpu);
}

class SortSizes : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(SortSizes, CpuSortMatchesStdSort)
{
    auto keys = randomCodes(GetParam(), 4);
    auto want = keys;
    std::sort(want.begin(), want.end());
    std::vector<std::uint32_t> scratch(keys.size());
    sched::ThreadPool pool(3);
    radixSortCpu(CpuExec{&pool}, keys, scratch);
    EXPECT_EQ(keys, want);
}

TEST_P(SortSizes, GpuSortMatchesStdSort)
{
    auto keys = randomCodes(GetParam(), 5);
    auto want = keys;
    std::sort(want.begin(), want.end());
    std::vector<std::uint32_t> scratch(keys.size());
    radixSortGpu(keys, scratch);
    EXPECT_EQ(keys, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 100, 1023, 50000));

TEST(Sort, AllEqualKeys)
{
    std::vector<std::uint32_t> keys(1000, 42u);
    std::vector<std::uint32_t> scratch(keys.size());
    radixSortCpu(CpuExec{nullptr}, keys, scratch);
    for (auto k : keys)
        EXPECT_EQ(k, 42u);
}

class UniqueSizes : public ::testing::TestWithParam<std::int64_t>
{
  protected:
    /** Sorted input with many duplicates. */
    std::vector<std::uint32_t>
    dupSorted(std::int64_t n, std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
        for (auto& x : v)
            x = static_cast<std::uint32_t>(rng.nextBounded(
                static_cast<std::uint64_t>(n / 2 + 1)));
        std::sort(v.begin(), v.end());
        return v;
    }
};

TEST_P(UniqueSizes, CpuMatchesStdUnique)
{
    const auto in = dupSorted(GetParam(), 6);
    auto want = in;
    want.erase(std::unique(want.begin(), want.end()), want.end());

    std::vector<std::uint32_t> out(in.size());
    std::vector<std::uint32_t> flags(in.size());
    sched::ThreadPool pool(3);
    const std::int64_t k = uniqueCpu(CpuExec{&pool}, in, out, flags);
    ASSERT_EQ(static_cast<std::size_t>(k), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(out[i], want[i]);
}

TEST_P(UniqueSizes, GpuMatchesStdUnique)
{
    const auto in = dupSorted(GetParam(), 7);
    auto want = in;
    want.erase(std::unique(want.begin(), want.end()), want.end());

    std::vector<std::uint32_t> out(in.size());
    std::vector<std::uint32_t> flags(in.size());
    const std::int64_t k = uniqueGpu(in, out, flags);
    ASSERT_EQ(static_cast<std::size_t>(k), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(out[i], want[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UniqueSizes,
                         ::testing::Values(1, 2, 100, 4096, 30000));

TEST(Unique, NoDuplicatesPassesThrough)
{
    const auto in = uniqueSortedCodes(500, 8);
    std::vector<std::uint32_t> out(in.size());
    std::vector<std::uint32_t> flags(in.size());
    const std::int64_t k = uniqueCpu(CpuExec{nullptr}, in, out, flags);
    EXPECT_EQ(static_cast<std::size_t>(k), in.size());
}

TEST(Unique, AllDuplicatesCollapseToOne)
{
    const std::vector<std::uint32_t> in(777, 5u);
    std::vector<std::uint32_t> out(in.size());
    std::vector<std::uint32_t> flags(in.size());
    EXPECT_EQ(uniqueCpu(CpuExec{nullptr}, in, out, flags), 1);
    EXPECT_EQ(out[0], 5u);
}

class ScanSizes : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(ScanSizes, CpuScanMatchesReference)
{
    Rng rng(9);
    std::vector<std::uint32_t> in(static_cast<std::size_t>(
        GetParam()));
    for (auto& x : in)
        x = static_cast<std::uint32_t>(rng.nextBounded(10));
    std::vector<std::uint32_t> out(in.size());
    sched::ThreadPool pool(3);
    const std::uint64_t total = exclusiveScanCpu(CpuExec{&pool}, in,
                                                 out);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i], run);
        run += in[i];
    }
    EXPECT_EQ(total, run);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 1000,
                                           65536));

TEST(Scan, InPlaceAliasing)
{
    std::vector<std::uint32_t> data{3, 1, 4, 1, 5, 9, 2, 6};
    const auto copy = data;
    exclusiveScanCpu(CpuExec{nullptr}, data, data);
    std::uint32_t run = 0;
    for (std::size_t i = 0; i < copy.size(); ++i) {
        EXPECT_EQ(data[i], run);
        run += copy[i];
    }
}

TEST(CommonPrefix, KnownValues)
{
    EXPECT_EQ(commonPrefixBits(0u, 1u), 29);
    EXPECT_EQ(commonPrefixBits(0u, 1u << 29), 0);
    EXPECT_EQ(commonPrefixBits(0b1000u, 0b1001u), 29);
    EXPECT_EQ(commonPrefixBits(0b1000u, 0b0111u), 26);
}

struct TreeStorage
{
    std::vector<std::int32_t> left, right, parent, leaf_parent;
    std::vector<std::int32_t> prefix_len, first, last;

    explicit TreeStorage(std::int64_t k)
        : left(static_cast<std::size_t>(k)),
          right(static_cast<std::size_t>(k)),
          parent(static_cast<std::size_t>(k)),
          leaf_parent(static_cast<std::size_t>(k)),
          prefix_len(static_cast<std::size_t>(k)),
          first(static_cast<std::size_t>(k)),
          last(static_cast<std::size_t>(k))
    {
    }

    RadixTreeView
    view()
    {
        return RadixTreeView{left, right, parent, leaf_parent,
                             prefix_len, first, last};
    }
};

class RadixTreeSizes : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(RadixTreeSizes, CpuTreeValidates)
{
    const auto codes = uniqueSortedCodes(GetParam(), 10);
    const auto k = static_cast<std::int64_t>(codes.size());
    TreeStorage st(k);
    sched::ThreadPool pool(3);
    buildRadixTreeCpu(CpuExec{&pool}, codes, k, st.view());
    EXPECT_EQ(validateRadixTree(codes, k, st.view()), "");
}

TEST_P(RadixTreeSizes, GpuTreeMatchesCpuTree)
{
    const auto codes = uniqueSortedCodes(GetParam(), 11);
    const auto k = static_cast<std::int64_t>(codes.size());
    TreeStorage cpu_st(k), gpu_st(k);
    buildRadixTreeCpu(CpuExec{nullptr}, codes, k, cpu_st.view());
    buildRadixTreeGpu(GpuExec{}, codes, k, gpu_st.view());
    EXPECT_EQ(cpu_st.left, gpu_st.left);
    EXPECT_EQ(cpu_st.right, gpu_st.right);
    EXPECT_EQ(cpu_st.parent, gpu_st.parent);
    EXPECT_EQ(cpu_st.leaf_parent, gpu_st.leaf_parent);
}

TEST_P(RadixTreeSizes, EveryLeafReachableFromRoot)
{
    const auto codes = uniqueSortedCodes(GetParam(), 12);
    const auto k = static_cast<std::int64_t>(codes.size());
    if (k < 2)
        GTEST_SKIP() << "no internal nodes";
    TreeStorage st(k);
    buildRadixTreeCpu(CpuExec{nullptr}, codes, k, st.view());

    std::set<std::int32_t> leaves;
    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
        const std::int32_t node = stack.back();
        stack.pop_back();
        for (std::int32_t child :
             {st.left[static_cast<std::size_t>(node)],
              st.right[static_cast<std::size_t>(node)]}) {
            if (RadixTreeView::isLeaf(child))
                leaves.insert(RadixTreeView::leafIndex(child));
            else
                stack.push_back(child);
        }
    }
    EXPECT_EQ(leaves.size(), static_cast<std::size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixTreeSizes,
                         ::testing::Values(1, 2, 3, 5, 64, 1000, 20000));

TEST(RadixTree, TwoCodes)
{
    const std::vector<std::uint32_t> codes{0b000u, 0b100u};
    TreeStorage st(2);
    buildRadixTreeCpu(CpuExec{nullptr}, codes, 2, st.view());
    EXPECT_TRUE(RadixTreeView::isLeaf(st.left[0]));
    EXPECT_TRUE(RadixTreeView::isLeaf(st.right[0]));
    EXPECT_EQ(st.prefix_len[0], commonPrefixBits(codes[0], codes[1]));
    EXPECT_EQ(validateRadixTree(codes, 2, st.view()), "");
}

struct OctStorage
{
    TreeStorage tree;
    std::vector<std::uint32_t> counts, offsets;
    std::vector<std::uint32_t> prefix, child_mask;
    std::vector<std::int32_t> level, parent, first_code, code_count;

    explicit OctStorage(std::int64_t k)
        : tree(k), counts(static_cast<std::size_t>(2 * k)),
          offsets(static_cast<std::size_t>(2 * k)),
          prefix(static_cast<std::size_t>(maxOctreeNodes(k))),
          child_mask(prefix.size()), level(prefix.size()),
          parent(prefix.size()), first_code(prefix.size()),
          code_count(prefix.size())
    {
    }

    OctreeView
    view()
    {
        return OctreeView{prefix, level, parent, child_mask,
                          first_code, code_count};
    }
};

/** Run stages 4-7 through one backend; returns node count. */
std::int64_t
buildAll(const std::vector<std::uint32_t>& codes, OctStorage& st,
         bool gpu = false)
{
    const auto k = static_cast<std::int64_t>(codes.size());
    sched::ThreadPool pool(3);
    const CpuExec cpu{&pool};
    const GpuExec gexec{};
    if (gpu)
        buildRadixTreeGpu(gexec, codes, k, st.tree.view());
    else
        buildRadixTreeCpu(cpu, codes, k, st.tree.view());

    auto counts_span = std::span<std::uint32_t>(st.counts)
                           .subspan(0, static_cast<std::size_t>(
                                           2 * k - 1));
    if (gpu)
        countOctreeNodesGpu(gexec, st.tree.view(), k, counts_span);
    else
        countOctreeNodesCpu(cpu, st.tree.view(), k, counts_span);

    std::uint64_t total;
    if (gpu)
        total = exclusiveScanGpu(counts_span,
                                 std::span<std::uint32_t>(st.offsets));
    else
        total = exclusiveScanCpu(cpu, counts_span,
                                 std::span<std::uint32_t>(st.offsets));

    if (gpu)
        return buildOctreeGpu(gexec, codes, k, st.tree.view(),
                              st.counts, st.offsets, total, st.view());
    return buildOctreeCpu(cpu, codes, k, st.tree.view(), st.counts,
                          st.offsets, total, st.view());
}

class OctreeSizes : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(OctreeSizes, CpuOctreeValidates)
{
    const auto codes = uniqueSortedCodes(GetParam(), 13);
    const auto k = static_cast<std::int64_t>(codes.size());
    OctStorage st(k);
    const std::int64_t nodes = buildAll(codes, st);
    EXPECT_GT(nodes, 0);
    EXPECT_LE(nodes, maxOctreeNodes(k));
    EXPECT_EQ(validateOctree(codes, k, st.view(), nodes), "");
}

TEST_P(OctreeSizes, GpuMatchesCpu)
{
    const auto codes = uniqueSortedCodes(GetParam(), 14);
    const auto k = static_cast<std::int64_t>(codes.size());
    OctStorage cpu_st(k), gpu_st(k);
    const std::int64_t cpu_nodes = buildAll(codes, cpu_st, false);
    const std::int64_t gpu_nodes = buildAll(codes, gpu_st, true);
    ASSERT_EQ(cpu_nodes, gpu_nodes);
    for (std::int64_t n = 0; n < cpu_nodes; ++n) {
        const auto i = static_cast<std::size_t>(n);
        EXPECT_EQ(cpu_st.prefix[i], gpu_st.prefix[i]);
        EXPECT_EQ(cpu_st.level[i], gpu_st.level[i]);
        EXPECT_EQ(cpu_st.parent[i], gpu_st.parent[i]);
        EXPECT_EQ(cpu_st.child_mask[i], gpu_st.child_mask[i]);
    }
}

TEST_P(OctreeSizes, LeafCountEqualsUniqueCodes)
{
    const auto codes = uniqueSortedCodes(GetParam(), 15);
    const auto k = static_cast<std::int64_t>(codes.size());
    OctStorage st(k);
    const std::int64_t nodes = buildAll(codes, st);
    std::int64_t leaves = 0;
    for (std::int64_t n = 0; n < nodes; ++n)
        if (st.child_mask[static_cast<std::size_t>(n)] == 0)
            ++leaves;
    EXPECT_EQ(leaves, k);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OctreeSizes,
                         ::testing::Values(1, 2, 3, 9, 100, 2000,
                                           10000));

TEST(Octree, SingleCodeChainsToMaxDepth)
{
    const std::vector<std::uint32_t> codes{0x12345678u
                                           & ((1u << kMortonBits) - 1)};
    OctStorage st(1);
    sched::ThreadPool pool(2);
    const CpuExec cpu{&pool};
    buildRadixTreeCpu(cpu, codes, 1, st.tree.view());
    auto counts_span
        = std::span<std::uint32_t>(st.counts).subspan(0, 1);
    countOctreeNodesCpu(cpu, st.tree.view(), 1, counts_span);
    EXPECT_EQ(st.counts[0],
              static_cast<std::uint32_t>(kMaxOctreeLevel));
    const std::uint64_t total = exclusiveScanCpu(
        cpu, counts_span, std::span<std::uint32_t>(st.offsets));
    const std::int64_t nodes
        = buildOctreeCpu(cpu, codes, 1, st.tree.view(), st.counts,
                         st.offsets, total, st.view());
    EXPECT_EQ(nodes, kMaxOctreeLevel + 1); // root + full chain
    EXPECT_EQ(validateOctree(codes, 1, st.view(), nodes), "");
}

} // namespace
} // namespace bt::kernels
