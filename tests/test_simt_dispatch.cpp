/**
 * @file
 * Dispatch-tier equivalence tests: every device kernel must produce
 * bit-identical output no matter which GpuExec dispatch strategy runs
 * it — templated serial (the default), the type-erased simt::Kernel
 * tier, seeded shuffled block order, and pooled launches over worker
 * teams of size 1, 2, and 8. This is the contract that lets the
 * scheduler, the debug shuffler, and the benchmarks pick dispatch
 * strategies freely.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/image.hpp"
#include "kernels/linear.hpp"
#include "kernels/morton.hpp"
#include "kernels/octree.hpp"
#include "kernels/pooling.hpp"
#include "kernels/prefix_sum.hpp"
#include "kernels/radix_tree.hpp"
#include "kernels/sparse_conv.hpp"
#include "sched/thread_pool.hpp"

namespace bt::kernels {
namespace {

std::vector<float>
randomFloats(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.nextRange(-1.0, 1.0));
    return v;
}

template <typename T>
void
expectBitIdentical(const std::vector<T>& golden, const std::vector<T>& got,
                   const std::string& label)
{
    ASSERT_EQ(golden.size(), got.size()) << label;
    for (std::size_t i = 0; i < golden.size(); ++i) {
        ASSERT_EQ(0,
                  std::memcmp(&golden[i], &got[i], sizeof(T)))
            << label << " diverges at element " << i;
    }
}

/**
 * Run @p run under every dispatch strategy and require bit-identical
 * results against the templated serial baseline. @p run maps a GpuExec
 * to the kernel's flattened output.
 */
template <typename Run>
void
expectDispatchInvariant(Run&& run)
{
    const GpuExec baseline;
    const auto golden = run(baseline);

    {
        GpuExec exec;
        exec.erased = true;
        expectBitIdentical(golden, run(exec), "erased");
    }
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
        GpuExec exec;
        exec.order = GpuExec::Order::Shuffled;
        exec.shuffleSeed = seed;
        expectBitIdentical(golden, run(exec),
                           "shuffled/" + std::to_string(seed));
        exec.erased = true;
        expectBitIdentical(golden, run(exec),
                           "shuffled+erased/" + std::to_string(seed));
    }
    for (int team : {1, 2, 8}) {
        sched::ThreadPool pool(team);
        GpuExec exec;
        exec.pool = &pool;
        expectBitIdentical(golden, run(exec),
                           "pooled/" + std::to_string(team));
        exec.erased = true;
        expectBitIdentical(golden, run(exec),
                           "pooled+erased/" + std::to_string(team));
    }
}

TEST(DispatchEquivalence, Conv2d)
{
    const ConvShape shape{Shape3{5, 19, 23}, 7};
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 101);
    const auto w = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 102);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                103);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> out(static_cast<std::size_t>(
            shape.out().elems()));
        conv2dGpu(exec, shape, in, w, b, out);
        return out;
    });
}

TEST(DispatchEquivalence, SparseConv)
{
    const ConvShape shape{Shape3{6, 17, 13}, 9};
    const auto dense = randomFloats(static_cast<std::size_t>(
        shape.weightElems()), 104);
    const CsrMatrix csr = pruneToCsr(dense, shape.outC, shape.in.c * 9,
                                     0.4);
    const auto in = randomFloats(static_cast<std::size_t>(
        shape.in.elems()), 105);
    const auto b = randomFloats(static_cast<std::size_t>(shape.outC),
                                106);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> out(static_cast<std::size_t>(
            shape.out().elems()));
        sparseConvGpu(exec, shape, in, csr, b, out);
        return out;
    });
}

TEST(DispatchEquivalence, Maxpool)
{
    const Shape3 shape{4, 30, 26};
    const auto in = randomFloats(static_cast<std::size_t>(shape.elems()),
                                 107);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> out(static_cast<std::size_t>(
            pooledShape(shape).elems()));
        maxpoolGpu(exec, shape, in, out);
        return out;
    });
}

TEST(DispatchEquivalence, Linear)
{
    const int in_features = 37;
    const int out_features = 211;
    const auto in = randomFloats(static_cast<std::size_t>(in_features),
                                 108);
    const auto w = randomFloats(static_cast<std::size_t>(in_features)
                                    * out_features,
                                109);
    const auto b = randomFloats(static_cast<std::size_t>(out_features),
                                110);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> out(static_cast<std::size_t>(out_features));
        linearGpu(exec, in_features, out_features, in, w, b, out);
        return out;
    });
}

TEST(DispatchEquivalence, ImagePipelineKernels)
{
    const ImageShape shape{47, 31};
    const auto n = static_cast<std::size_t>(shape.pixels());
    const auto img = randomFloats(n, 111);

    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> out(n);
        blurHGpu(exec, shape, img, out);
        return out;
    });
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> out(n);
        blurVGpu(exec, shape, img, out);
        return out;
    });
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> gx(n);
        std::vector<float> gy(n);
        sobelGpu(exec, shape, img, gx, gy);
        gx.insert(gx.end(), gy.begin(), gy.end());
        return gx;
    });

    std::vector<float> gx(n);
    std::vector<float> gy(n);
    sobelGpu(GpuExec{}, shape, img, gx, gy);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<float> response(n);
        harrisGpu(exec, shape, gx, gy, response);
        return response;
    });

    std::vector<float> response(n);
    harrisGpu(GpuExec{}, shape, gx, gy, response);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<std::uint32_t> flags(n);
        nmsGpu(exec, shape, response, 0.01f, flags);
        return flags;
    });

    std::vector<std::uint32_t> corners;
    for (std::size_t i = 0; i < n; i += 7)
        corners.push_back(static_cast<std::uint32_t>(i));
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<std::uint32_t> desc(
            corners.size() * static_cast<std::size_t>(kDescriptorWords));
        briefGpu(exec, shape, img, corners,
                 static_cast<std::int64_t>(corners.size()), desc);
        return desc;
    });
}

TEST(DispatchEquivalence, MortonEncode)
{
    const std::int64_t n = 1500;
    Rng rng(112);
    std::vector<float> pts(static_cast<std::size_t>(3 * n));
    for (auto& p : pts)
        p = static_cast<float>(rng.nextRange(0.0, 1.0));
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<std::uint32_t> codes(static_cast<std::size_t>(n));
        mortonEncodeGpu(exec, pts, codes, n);
        return codes;
    });
}

/** Sorted unique Morton codes for the tree-construction kernels. */
std::vector<std::uint32_t>
uniqueCodes(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> codes(static_cast<std::size_t>(n));
    for (auto& c : codes)
        c = static_cast<std::uint32_t>(rng.nextBounded(1u << 30));
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    return codes;
}

struct RadixTreeStorage
{
    std::vector<std::int32_t> left, right, parent, leafParent, prefixLen,
        first, last;

    explicit RadixTreeStorage(std::int64_t k)
        : left(static_cast<std::size_t>(k - 1)),
          right(static_cast<std::size_t>(k - 1)),
          parent(static_cast<std::size_t>(k - 1)),
          leafParent(static_cast<std::size_t>(k)),
          prefixLen(static_cast<std::size_t>(k - 1)),
          first(static_cast<std::size_t>(k - 1)),
          last(static_cast<std::size_t>(k - 1))
    {
    }

    RadixTreeView
    view()
    {
        return RadixTreeView{left, right, parent, leafParent, prefixLen,
                             first, last};
    }

    std::vector<std::int32_t>
    flattened() const
    {
        std::vector<std::int32_t> all;
        for (const auto* v :
             {&left, &right, &parent, &leafParent, &prefixLen, &first,
              &last})
            all.insert(all.end(), v->begin(), v->end());
        return all;
    }
};

TEST(DispatchEquivalence, BuildRadixTree)
{
    const auto codes = uniqueCodes(1200, 113);
    const auto k = static_cast<std::int64_t>(codes.size());
    ASSERT_GT(k, 1);
    expectDispatchInvariant([&](const GpuExec& exec) {
        RadixTreeStorage tree(k);
        buildRadixTreeGpu(exec, codes, k, tree.view());
        return tree.flattened();
    });
}

TEST(DispatchEquivalence, OctreeCountAndBuild)
{
    const auto codes = uniqueCodes(900, 114);
    const auto k = static_cast<std::int64_t>(codes.size());
    ASSERT_GT(k, 1);
    RadixTreeStorage tree(k);
    buildRadixTreeCpu(CpuExec{nullptr}, codes, k, tree.view());

    const auto num_counts = static_cast<std::size_t>(2 * k - 1);
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<std::uint32_t> counts(num_counts);
        countOctreeNodesGpu(exec, tree.view(), k, counts);
        return counts;
    });

    std::vector<std::uint32_t> counts(num_counts);
    countOctreeNodesCpu(CpuExec{nullptr}, tree.view(), k, counts);
    std::vector<std::uint32_t> offsets(num_counts);
    const std::uint64_t total = exclusiveScanCpu(CpuExec{nullptr}, counts,
                                                 offsets);

    const auto cap = static_cast<std::size_t>(maxOctreeNodes(k));
    expectDispatchInvariant([&](const GpuExec& exec) {
        std::vector<std::uint32_t> prefix(cap);
        std::vector<std::int32_t> level(cap);
        std::vector<std::int32_t> parent(cap);
        std::vector<std::uint32_t> childMask(cap);
        std::vector<std::int32_t> firstCode(cap);
        std::vector<std::int32_t> codeCount(cap);
        const OctreeView view{prefix,    level,     parent,
                              childMask, firstCode, codeCount};
        const std::int64_t nodes
            = buildOctreeGpu(exec, codes, k, tree.view(), counts, offsets,
                             total, view);
        std::vector<std::int32_t> all;
        all.push_back(static_cast<std::int32_t>(nodes));
        const auto used = static_cast<std::size_t>(nodes);
        for (std::size_t i = 0; i < used; ++i) {
            all.push_back(static_cast<std::int32_t>(prefix[i]));
            all.push_back(level[i]);
            all.push_back(parent[i]);
            all.push_back(static_cast<std::int32_t>(childMask[i]));
            all.push_back(firstCode[i]);
            all.push_back(codeCount[i]);
        }
        return all;
    });
}

} // namespace
} // namespace bt::kernels
